"""Analog inference layers: equivalence to digital layers and conversion."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor
from repro.compensation import CompensationPlan
from repro.hardware import AnalogConv2d, AnalogLinear, analogize
from repro.hardware.cost import CrossbarCostModel
from repro.models import LeNet5
from repro.variation import LogNormalVariation


class TestAnalogLinear:
    def test_ideal_matches_digital(self):
        layer = nn.Linear(10, 6, seed=0)
        analog = AnalogLinear(layer, tile_size=4)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 10)))
        np.testing.assert_allclose(analog(x).data, layer(x).data, atol=1e-9)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False, seed=0)
        analog = AnalogLinear(layer)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)))
        np.testing.assert_allclose(analog(x).data, layer(x).data, atol=1e-10)

    def test_programmed_variation_changes_output(self):
        layer = nn.Linear(10, 6, seed=0)
        analog = AnalogLinear(layer).program(LogNormalVariation(0.4), seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(3, 10)))
        assert not np.allclose(analog(x).data, layer(x).data)


class TestAnalogConv2d:
    def test_ideal_matches_digital(self):
        conv = nn.Conv2d(3, 5, 3, padding=1, seed=0)
        analog = AnalogConv2d(conv, tile_size=8)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 6, 6)))
        np.testing.assert_allclose(analog(x).data, conv(x).data, atol=1e-9)

    def test_stride_and_no_padding(self):
        conv = nn.Conv2d(1, 2, 3, stride=2, padding=0, seed=0)
        analog = AnalogConv2d(conv)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 1, 7, 7)))
        np.testing.assert_allclose(analog(x).data, conv(x).data, atol=1e-9)


class TestAnalogize:
    def test_whole_model_equivalent_when_ideal(self, lenet):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 16, 16)))
        expected = lenet(x).data.copy()
        analogize(lenet, tile_size=64)
        np.testing.assert_allclose(lenet(x).data, expected, atol=1e-8)

    def test_all_weighted_layers_replaced(self, lenet):
        analogize(lenet)
        kinds = [type(m).__name__ for m in lenet.modules()]
        assert "Conv2d" not in kinds and "Linear" not in kinds
        assert "AnalogConv2d" in kinds and "AnalogLinear" in kinds

    def test_digital_compensation_preserved(self, lenet):
        comp = CompensationPlan({0: 0.5}).apply(lenet, seed=0)
        analogize(comp)
        digital = [m for m in comp.modules() if getattr(m, "digital", False)]
        assert digital
        assert all(type(m).__name__ == "Conv2d" for m in digital)

    def test_variation_at_conversion(self, lenet):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 16, 16)))
        expected = lenet(x).data.copy()
        analogize(lenet, variation=LogNormalVariation(0.5), seed=1)
        assert not np.allclose(lenet(x).data, expected)


class TestCostModel:
    def test_macs_counted(self, lenet):
        report = CrossbarCostModel().estimate(lenet, spatial_sites=16)
        assert report.analog_macs > 0
        assert report.energy_pj > 0
        assert report.area_mm2 > 0

    def test_compensation_counted_as_digital(self, lenet):
        comp = CompensationPlan({0: 1.0}).apply(lenet, seed=0)
        report = CrossbarCostModel().estimate(comp, spatial_sites=16)
        assert report.digital_macs > 0
        assert 0 < report.digital_fraction < 0.5  # marginal vs analog

    def test_plain_model_all_analog(self, lenet):
        report = CrossbarCostModel().estimate(lenet)
        assert report.digital_macs == 0
        assert report.digital_fraction == 0.0
