"""Analog inference layers: equivalence to digital layers and conversion."""

import subprocess
import sys

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor
from repro.compensation import CompensationPlan
from repro.hardware import AnalogConv2d, AnalogLinear, analogize
from repro.hardware.cost import CrossbarCostModel
from repro.models import LeNet5
from repro.utils.rng import spawn_rngs
from repro.variation import LogNormalVariation


class TestAnalogLinear:
    def test_ideal_matches_digital(self):
        layer = nn.Linear(10, 6, seed=0)
        analog = AnalogLinear(layer, tile_size=4)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 10)))
        np.testing.assert_allclose(analog(x).data, layer(x).data, atol=1e-9)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False, seed=0)
        analog = AnalogLinear(layer)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)))
        np.testing.assert_allclose(analog(x).data, layer(x).data, atol=1e-10)

    def test_programmed_variation_changes_output(self):
        layer = nn.Linear(10, 6, seed=0)
        analog = AnalogLinear(layer).program(LogNormalVariation(0.4), seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(3, 10)))
        assert not np.allclose(analog(x).data, layer(x).data)


class TestAnalogConv2d:
    def test_ideal_matches_digital(self):
        conv = nn.Conv2d(3, 5, 3, padding=1, seed=0)
        analog = AnalogConv2d(conv, tile_size=8)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 6, 6)))
        np.testing.assert_allclose(analog(x).data, conv(x).data, atol=1e-9)

    def test_stride_and_no_padding(self):
        conv = nn.Conv2d(1, 2, 3, stride=2, padding=0, seed=0)
        analog = AnalogConv2d(conv)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 1, 7, 7)))
        np.testing.assert_allclose(analog(x).data, conv(x).data, atol=1e-9)


class TestAnalogize:
    def test_whole_model_equivalent_when_ideal(self, lenet):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 16, 16)))
        expected = lenet(x).data.copy()
        analogize(lenet, tile_size=64)
        np.testing.assert_allclose(lenet(x).data, expected, atol=1e-8)

    def test_all_weighted_layers_replaced(self, lenet):
        analogize(lenet)
        kinds = [type(m).__name__ for m in lenet.modules()]
        assert "Conv2d" not in kinds and "Linear" not in kinds
        assert "AnalogConv2d" in kinds and "AnalogLinear" in kinds

    def test_digital_compensation_preserved(self, lenet):
        comp = CompensationPlan({0: 0.5}).apply(lenet, seed=0)
        analogize(comp)
        digital = [m for m in comp.modules() if getattr(m, "digital", False)]
        assert digital
        assert all(type(m).__name__ == "Conv2d" for m in digital)

    def test_variation_at_conversion(self, lenet):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 16, 16)))
        expected = lenet(x).data.copy()
        analogize(lenet, variation=LogNormalVariation(0.5), seed=1)
        assert not np.allclose(lenet(x).data, expected)


class TestStackedKernels:
    """Stacked activation layouts of the sample-aware analog layers:
    (S, N, F) batch-major through AnalogLinear, channel-major
    (S, C, N, H, W) through AnalogConv2d."""

    def test_layers_declare_sample_aware(self):
        from repro.evaluation import supports_sample_axis
        layer = AnalogLinear(nn.Linear(4, 3, seed=0))
        assert getattr(layer, "sample_aware", False)
        assert supports_sample_axis(layer)

    def test_linear_stacked_programming_matches_per_sample(self):
        layer = nn.Linear(10, 6, seed=0)
        x = np.random.default_rng(0).normal(size=(3, 10))
        analog = AnalogLinear(layer, tile_size=4)
        analog.program_batch(LogNormalVariation(0.4), spawn_rngs(5, 3))
        out = analog(Tensor(x)).data
        assert out.shape == (3, 3, 6)
        for i, rng in enumerate(spawn_rngs(5, 3)):
            ref = AnalogLinear(layer, tile_size=4).program(
                LogNormalVariation(0.4), rng
            )
            np.testing.assert_array_equal(out[i], ref(Tensor(x)).data)

    def test_linear_stacked_input(self):
        layer = nn.Linear(8, 5, seed=1)
        analog = AnalogLinear(layer, tile_size=4)
        x = np.random.default_rng(1).normal(size=(2, 3, 8))
        out = analog(Tensor(x)).data
        assert out.shape == (2, 3, 5)
        for i in range(2):
            np.testing.assert_allclose(
                out[i], layer(Tensor(x[i])).data, atol=1e-9
            )

    def test_conv_stacked_programming_matches_per_sample(self):
        conv = nn.Conv2d(3, 5, 3, padding=1, seed=0)
        x = np.random.default_rng(2).normal(size=(2, 3, 6, 6))
        analog = AnalogConv2d(conv, tile_size=8)
        analog.program_batch(LogNormalVariation(0.4), spawn_rngs(6, 3))
        out = analog(Tensor(x)).data
        assert out.shape == (3, 5, 2, 6, 6)  # channel-major (S, F, N, OH, OW)
        for i, rng in enumerate(spawn_rngs(6, 3)):
            ref = AnalogConv2d(conv, tile_size=8).program(
                LogNormalVariation(0.4), rng
            )
            np.testing.assert_array_equal(
                out[i], ref(Tensor(x)).data.transpose(1, 0, 2, 3)
            )

    def test_conv_stacked_input_channel_major(self):
        conv = nn.Conv2d(2, 4, 3, stride=2, seed=3)
        analog = AnalogConv2d(conv, tile_size=8)
        # (S, C, N, H, W): per-sample activations through a shared array.
        x = np.random.default_rng(3).normal(size=(3, 2, 2, 7, 7))
        out = analog(Tensor(x)).data
        assert out.shape == (3, 4, 2, 3, 3)
        for i in range(3):
            np.testing.assert_allclose(
                out[i],
                conv(Tensor(x[i].transpose(1, 0, 2, 3))).data.transpose(
                    1, 0, 2, 3
                ),
                atol=1e-9,
            )

    def test_conv_stacked_planes_and_stacked_input(self):
        conv = nn.Conv2d(2, 3, 3, padding=1, seed=4)
        analog = AnalogConv2d(conv, tile_size=8)
        analog.program_batch(LogNormalVariation(0.3), spawn_rngs(8, 2))
        x = np.random.default_rng(4).normal(size=(2, 2, 2, 5, 5))
        out = analog(Tensor(x)).data
        assert out.shape == (2, 3, 2, 5, 5)
        for i, rng in enumerate(spawn_rngs(8, 2)):
            ref = AnalogConv2d(conv, tile_size=8).program(
                LogNormalVariation(0.3), rng
            )
            np.testing.assert_array_equal(
                out[i],
                ref(Tensor(x[i].transpose(1, 0, 2, 3))).data.transpose(
                    1, 0, 2, 3
                ),
            )


class TestAnalogizeSeeding:
    """Regression: per-layer programming seeds came from the salted
    Python ``hash`` — irreproducible across processes for str seeds and a
    TypeError for Generator seeds. Now spawned via SeedSequence."""

    _SNIPPET = (
        "import numpy as np\n"
        "from repro.hardware import analogize, analog_layers\n"
        "from repro.models import LeNet5\n"
        "from repro.variation import LogNormalVariation\n"
        "m = LeNet5(num_classes=10, in_channels=1, input_size=16,\n"
        "           width_multiplier=0.5, seed=0)\n"
        "analogize(m, variation=LogNormalVariation(0.5), seed={seed!r})\n"
        "digest = [float(l.array.effective_weights().sum())\n"
        "          for _, l in analog_layers(m)]\n"
        "print(repr(digest))\n"
    )

    def _digest_in_subprocess(self, seed, hashseed):
        import os
        env = dict(os.environ, PYTHONHASHSEED=str(hashseed))
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", self._SNIPPET.format(seed=seed)],
            capture_output=True, text=True, env=env, check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        return out.stdout.strip()

    @pytest.mark.parametrize("seed", [1234, "chip-a"])
    def test_deterministic_across_hash_randomization(self, seed):
        """The same seed must program the same chip in any process —
        PYTHONHASHSEED (which salts ``hash``) must have no effect."""
        a = self._digest_in_subprocess(seed, hashseed=1)
        b = self._digest_in_subprocess(seed, hashseed=2)
        assert a == b

    def test_generator_seed_supported(self, lenet):
        """Old derivation raised TypeError on hash((Generator, i))."""
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 16, 16)))
        expected = lenet(x).data.copy()
        analogize(lenet, variation=LogNormalVariation(0.5),
                  seed=np.random.default_rng(0))
        assert not np.allclose(lenet(x).data, expected)

    def test_same_seed_same_chip(self):
        def build():
            m = LeNet5(num_classes=10, in_channels=1, input_size=16,
                       width_multiplier=0.5, seed=0)
            return analogize(m, variation=LogNormalVariation(0.5), seed=77)

        from repro.hardware import analog_layers
        a, b = build(), build()
        for (_, la), (_, lb) in zip(analog_layers(a), analog_layers(b)):
            np.testing.assert_array_equal(
                la.array.effective_weights(), lb.array.effective_weights()
            )

    def test_layers_get_independent_seeds(self):
        m = LeNet5(num_classes=10, in_channels=1, input_size=16,
                   width_multiplier=0.5, seed=0)
        analogize(m, variation=LogNormalVariation(0.5), seed=5)
        from repro.hardware import analog_layers
        digests = [
            float(np.abs(l.array.effective_weights()).sum())
            for _, l in analog_layers(m)
        ]
        assert len(set(digests)) == len(digests)


class TestCostModel:
    def test_macs_counted(self, lenet):
        report = CrossbarCostModel().estimate(lenet, spatial_sites=16)
        assert report.analog_macs > 0
        assert report.energy_pj > 0
        assert report.area_mm2 > 0

    def test_compensation_counted_as_digital(self, lenet):
        comp = CompensationPlan({0: 1.0}).apply(lenet, seed=0)
        report = CrossbarCostModel().estimate(comp, spatial_sites=16)
        assert report.digital_macs > 0
        assert 0 < report.digital_fraction < 0.5  # marginal vs analog

    def test_plain_model_all_analog(self, lenet):
        report = CrossbarCostModel().estimate(lenet)
        assert report.digital_macs == 0
        assert report.digital_fraction == 0.0
