"""Eval dtype policy: per-dtype paired-seed bitwise equality + fingerprint.

The contract (docs/CONTRACTS.md): at a fixed dtype, all backends are
bitwise-equal on the same seed schedule — draws are generated in float64
and cast once, so the schedule itself is dtype-invariant — but float32
results are NOT float64 results, and the store fingerprint separates
them.
"""

import numpy as np
import pytest

from repro.data import synth_mnist
from repro.evaluation import MonteCarloEvaluator, build_plan, execute
from repro.hardware import analogize
from repro.models import MLP
from repro.store.fingerprint import plan_fingerprint
from repro.variation import LogNormalVariation
from repro.variation.injector import VariationInjector


def _accuracies(model, data, variation, *, dtype, **knobs):
    plan = build_plan(
        model, data, variation, n_samples=6, seed=11, dtype=dtype, **knobs
    )
    return plan, execute(plan, model, data)


class TestPerDtypePairing:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_all_backends_bitwise_equal(self, mlp, blob_dataset, dtype):
        variation = LogNormalVariation(0.5)
        plan, loop = _accuracies(
            mlp, blob_dataset, variation, dtype=dtype, vectorized=False
        )
        assert plan.backend == "loop"
        _, vec = _accuracies(
            mlp, blob_dataset, variation, dtype=dtype, vectorized=True
        )
        shm_plan, pool_shm = _accuracies(
            mlp, blob_dataset, variation, dtype=dtype,
            n_workers=2, chunk_samples=3,
        )
        assert shm_plan.transport == "shm"
        pickle_plan = build_plan(
            mlp, blob_dataset, variation, n_samples=6, seed=11, dtype=dtype,
            n_workers=2, chunk_samples=3, transport="pickle",
        )
        pool_pickle = execute(pickle_plan, mlp, blob_dataset)
        assert loop == vec == pool_shm == pool_pickle

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_predrawn_planes_are_bitwise_invisible(
        self, mlp, blob_dataset, dtype
    ):
        """Opt-in ``shm_planes=True``: the parent pre-draws every sample's
        planes into the arena and workers only read — through the same
        sampling site, so the result is bitwise the loop's at any dtype."""
        variation = LogNormalVariation(0.5)
        _, loop = _accuracies(
            mlp, blob_dataset, variation, dtype=dtype, vectorized=False
        )
        plan, pool = _accuracies(
            mlp, blob_dataset, variation, dtype=dtype,
            n_workers=2, chunk_samples=3, shm_planes=True,
        )
        assert plan.shm_planes and plan.transport == "shm"
        assert pool == loop

    def test_predrawn_planes_need_a_vectorized_shm_pool(
        self, mlp, blob_dataset
    ):
        with pytest.raises(ValueError, match="shm_planes"):
            build_plan(
                mlp, blob_dataset, LogNormalVariation(0.5),
                n_samples=6, seed=11, shm_planes=True,  # no pool requested
            )

    def test_seed_schedule_is_dtype_invariant(self, mlp):
        """Both dtypes consume the streams identically: draws are generated
        in float64 (rng consumption is shape-only) and cast once, so seed
        schedules — and chunk boundaries — never depend on the dtype."""
        from repro.utils.rng import spawn_rngs

        variation = LogNormalVariation(0.5)
        inj64 = VariationInjector(mlp, variation)
        inj32 = VariationInjector(mlp, variation, dtype="float32")
        for rng64, rng32 in zip(spawn_rngs(5, 3), spawn_rngs(5, 3)):
            draws64 = inj64.sample(rng64)
            draws32 = inj32.sample(rng32)
            assert set(draws64) == set(draws32)
            for name in draws64:
                assert draws64[name].dtype == np.float64
                assert draws32[name].dtype == np.float32
            # Equal post-draw stream state == equal consumption.
            assert rng64.random() == rng32.random()

    def test_model_and_dataset_restored_after_float32_run(self, mlp, blob_dataset):
        before = {
            name: param.data.copy() for name, param in mlp.named_parameters()
        }
        images_before = blob_dataset.images.copy()
        _accuracies(
            mlp, blob_dataset, LogNormalVariation(0.5),
            dtype="float32", vectorized=True,
        )
        for name, param in mlp.named_parameters():
            assert param.data.dtype == np.float64
            np.testing.assert_array_equal(param.data, before[name])
        assert blob_dataset.images.dtype == np.float64
        np.testing.assert_array_equal(blob_dataset.images, images_before)

    def test_float32_differs_from_float64_fingerprint(self, mlp, blob_dataset):
        variation = LogNormalVariation(0.5)
        fp = {
            dtype: plan_fingerprint(
                build_plan(
                    mlp, blob_dataset, variation,
                    n_samples=6, seed=11, dtype=dtype,
                ),
                mlp, blob_dataset,
            )
            for dtype in ("float64", "float32")
        }
        assert fp["float64"] != fp["float32"]

    def test_fingerprint_still_excludes_execution_knobs(self, mlp, blob_dataset):
        variation = LogNormalVariation(0.5)
        base = build_plan(
            mlp, blob_dataset, variation, n_samples=6, seed=11, dtype="float32"
        )
        pooled = build_plan(
            mlp, blob_dataset, variation, n_samples=6, seed=11, dtype="float32",
            n_workers=2, chunk_samples=3, transport="pickle",
        )
        assert base.backend != pooled.backend
        assert plan_fingerprint(base, mlp, blob_dataset) == plan_fingerprint(
            pooled, mlp, blob_dataset
        )

    def test_analog_rejects_float32(self, blob_dataset):
        train, _ = synth_mnist(train_per_class=2, test_per_class=2)
        model = MLP(4, [8], 3, flatten_input=True, seed=0)
        analogize(model)
        with pytest.raises(ValueError, match="float64"):
            build_plan(
                model, blob_dataset, LogNormalVariation(0.5),
                n_samples=4, seed=1, dtype="float32",
            )

    def test_unknown_dtype_rejected(self, mlp, blob_dataset):
        with pytest.raises(ValueError, match="dtype"):
            build_plan(
                mlp, blob_dataset, LogNormalVariation(0.5),
                n_samples=4, seed=1, dtype="float16",
            )

    def test_evaluator_threads_dtype(self, mlp, blob_dataset):
        ev32 = MonteCarloEvaluator(
            blob_dataset, n_samples=5, seed=8, dtype="float32"
        )
        ev64 = MonteCarloEvaluator(blob_dataset, n_samples=5, seed=8)
        plan32 = ev32.plan(mlp, LogNormalVariation(0.5))
        assert plan32.dtype == "float32"
        r32 = ev32.evaluate(mlp, LogNormalVariation(0.5))
        r64 = ev64.evaluate(mlp, LogNormalVariation(0.5))
        assert len(r32.accuracies) == len(r64.accuracies) == 5
