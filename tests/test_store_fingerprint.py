"""Plan fingerprints: canonical, content-addressed, execution-blind.

The invariant under test (docs/CONTRACTS.md "Fingerprint invariant"):
two plans fingerprint identically iff they describe the same *logical*
evaluation — weights, dataset, spec, seed schedule, domain, stopping —
and never differ because of execution knobs, dict insertion order, numpy
scalar types, or the interpreter's hash randomization.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.evaluation.plan import build_plan
from repro.evaluation.sequential import FixedSamples, HalfWidthRule
from repro.models import MLP
from repro.store.fingerprint import (
    canonical_json,
    dataset_digest,
    fingerprint_payload,
    plan_fingerprint,
    stopping_payload,
    weights_digest,
)
from repro.utils.rng import spawn_rngs


def _model():
    return MLP(4, [8], 3, flatten_input=True, seed=0)


def _dataset():
    images = np.arange(2 * 1 * 2 * 2, dtype=np.float64).reshape(2, 1, 2, 2) / 7.0
    return ArrayDataset(images, np.array([0, 1]))


def _plan(model, dataset, **overrides):
    kwargs = dict(n_samples=5, seed=9, vectorized=True)
    kwargs.update(overrides)
    return build_plan(model, dataset, "lognormal:0.4", **kwargs)


class TestCanonicalJson:
    def test_key_insertion_order_is_invisible(self):
        a = {"x": 1, "y": {"b": 2.0, "a": [3, 4]}}
        b = {"y": {"a": [3, 4], "b": 2.0}, "x": 1}
        assert canonical_json(a) == canonical_json(b)

    def test_numpy_scalars_coerce_to_python(self):
        assert canonical_json({"v": np.float64(0.5)}) == canonical_json({"v": 0.5})
        assert canonical_json({"v": np.int32(7)}) == canonical_json({"v": 7})
        assert canonical_json({"v": np.bool_(True)}) == canonical_json({"v": True})

    def test_tuples_and_lists_are_the_same_sequence(self):
        assert canonical_json({"v": (1, 2)}) == canonical_json({"v": [1, 2]})

    def test_nan_and_inf_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_json({"v": float("nan")})
        with pytest.raises(ValueError, match="non-finite"):
            canonical_json({"v": float("inf")})

    def test_non_string_keys_rejected(self):
        with pytest.raises(ValueError, match="keys must be str"):
            canonical_json({1: "x"})

    def test_unserializable_values_rejected(self):
        with pytest.raises(ValueError, match="not canonically serializable"):
            canonical_json({"v": object()})


class TestContentDigests:
    def test_weights_digest_tracks_content_not_identity(self):
        assert weights_digest(_model()) == weights_digest(_model())
        perturbed = _model()
        params = dict(perturbed.named_parameters())
        next(iter(params.values())).data += 1e-6
        assert weights_digest(perturbed) != weights_digest(_model())

    def test_dataset_digest_tracks_content(self):
        assert dataset_digest(_dataset()) == dataset_digest(_dataset())
        other = _dataset()
        shifted = ArrayDataset(other.images + 1e-9, other.labels)
        assert dataset_digest(shifted) != dataset_digest(other)


class TestFingerprintInvariant:
    def test_execution_knobs_are_provably_excluded(self):
        """Backend, workers, chunking, batching: same fingerprint."""
        model, dataset = _model(), _dataset()
        reference = plan_fingerprint(_plan(model, dataset), model, dataset)
        knob_variants = [
            dict(vectorized=False),
            dict(vectorized=False, n_workers=3),
            dict(chunk_samples=2),
            dict(memory_budget_mb=1.0),
            dict(batch_size=7),
            dict(data_block=3),
            dict(default_chunk=2),
            dict(worker_vectorized=False),
        ]
        for knobs in knob_variants:
            plan = _plan(model, dataset, **knobs)
            assert plan_fingerprint(plan, model, dataset) == reference, knobs

    def test_logical_inputs_all_enter_the_hash(self):
        model, dataset = _model(), _dataset()
        reference = plan_fingerprint(_plan(model, dataset), model, dataset)
        distinct = [
            _plan(model, dataset, n_samples=6),
            _plan(model, dataset, seed=10),
            build_plan(model, dataset, "lognormal:0.5",
                       n_samples=5, seed=9, vectorized=True),
            _plan(model, dataset, tolerance=0.05),
        ]
        prints = {plan_fingerprint(p, model, dataset) for p in distinct}
        assert reference not in prints
        assert len(prints) == len(distinct)

    def test_model_and_dataset_content_enter_the_hash(self):
        model, dataset = _model(), _dataset()
        plan = _plan(model, dataset)
        reference = plan_fingerprint(plan, model, dataset)
        perturbed = _model()
        params = dict(perturbed.named_parameters())
        next(iter(params.values())).data += 1e-6
        assert plan_fingerprint(plan, perturbed, dataset) != reference
        shifted = ArrayDataset(dataset.images + 1e-9, dataset.labels)
        assert plan_fingerprint(plan, model, shifted) != reference

    def test_analog_params_enter_the_hash(self):
        model, dataset = _model(), _dataset()
        plan = _plan(model, dataset)
        bare = plan_fingerprint(plan, model, dataset)
        analog = plan_fingerprint(plan, model, dataset,
                                  analog={"dac_bits": 6, "tile_size": 128})
        assert bare != analog

    def test_layer_subsets_and_masks_are_rejected(self):
        model, dataset = _model(), _dataset()
        layered = _plan(model, dataset, layers=[model])
        with pytest.raises(ValueError, match="not fingerprintable"):
            fingerprint_payload(layered, "m", "d")
        masked = _plan(
            model, dataset,
            protection_masks={"w": np.ones(2)},
        )
        with pytest.raises(ValueError, match="not fingerprintable"):
            fingerprint_payload(masked, "m", "d")

    def test_live_generator_seed_rejected(self):
        model, dataset = _model(), _dataset()
        plan = _plan(model, dataset, seed=spawn_rngs(0, 1)[0])
        with pytest.raises(ValueError, match="portable seed"):
            fingerprint_payload(plan, "m", "d")

    def test_stopping_rule_canonical_forms(self):
        assert stopping_payload(None) is None
        assert stopping_payload(FixedSamples()) is None
        rule = HalfWidthRule(tolerance=0.02, min_samples=4)
        payload = stopping_payload(rule)
        assert payload is not None and payload["kind"] == "half_width"
        assert payload["tolerance"] == 0.02

        class Exotic:
            def satisfied(self, accs):
                return False

        with pytest.raises(ValueError, match="no canonical fingerprint"):
            stopping_payload(Exotic())


_SUBPROCESS_SCRIPT = """
import numpy as np
from repro.data.dataset import ArrayDataset
from repro.evaluation.plan import build_plan
from repro.models import MLP
from repro.store.fingerprint import plan_fingerprint

model = MLP(4, [8], 3, flatten_input=True, seed=0)
images = np.arange(2 * 1 * 2 * 2, dtype=np.float64).reshape(2, 1, 2, 2) / 7.0
dataset = ArrayDataset(images, np.array([0, 1]))
plan = build_plan(model, dataset, "lognormal:0.4",
                  n_samples=5, seed=9, vectorized=True)
print(plan_fingerprint(plan, model, dataset))
"""


class TestCrossProcessStability:
    def test_same_hex_across_hash_randomized_processes(self):
        """PYTHONHASHSEED must not leak into the fingerprint: the same
        inputs hash to the same hex in any interpreter."""
        model, dataset = _model(), _dataset()
        local = plan_fingerprint(_plan(model, dataset), model, dataset)
        hexes = []
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src_dir, env.get("PYTHONPATH")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            hexes.append(out.stdout.strip())
        assert set(hexes) == {local}
        assert len(local) == 64  # sha256 hex
