"""DAC/ADC uniform quantizer: level placement regressions.

Pins the fixes for two historical bugs: (1) the 1-bit converter collapsed
every input to 0 (step spanned the whole range, banker's rounding did the
rest); (2) multi-bit quantization placed no level on ±full_scale and
overshot the range by up to a third of full scale at the exact boundaries.
"""

import numpy as np
import pytest

from repro.hardware import ADC, DAC
from repro.hardware.converters import _UniformQuantizer

FS = 2.5


class TestOneBit:
    """bits=1 is a mid-rise sign converter: levels ±full_scale/2."""

    def test_levels_are_half_full_scale(self):
        q = DAC(1)
        x = np.array([-FS, -1.0, -1e-9, 0.0, 1e-9, 1.0, FS])
        out = q.quantize(x, FS)
        np.testing.assert_array_equal(
            out, np.where(x < 0, -FS / 2, FS / 2)
        )

    def test_not_degenerate(self):
        """Regression: the old mid-tread formula returned 0 for *every*
        in-range input at bits=1."""
        out = ADC(1).quantize(np.linspace(-FS, FS, 101), FS)
        assert set(np.unique(out)) == {-FS / 2, FS / 2}

    def test_sign_information_preserved(self):
        x = np.random.default_rng(0).normal(size=64)
        out = DAC(1).quantize(x, FS)
        np.testing.assert_array_equal(np.sign(out), np.where(x < 0, -1.0, 1.0))


class TestTwoBit:
    """bits=2 keeps a zero level and symmetric extremes on ±full_scale."""

    def test_level_set(self):
        out = DAC(2).quantize(np.linspace(-FS, FS, 1001), FS)
        assert set(np.unique(out)) == {-FS, 0.0, FS}

    def test_boundaries_do_not_overshoot(self):
        """Regression: round(x/step) with step = 2fs/(L-1) mapped the exact
        boundary ±fs to ±4fs/3 at bits=2."""
        out = DAC(2).quantize(np.array([-FS, FS]), FS)
        np.testing.assert_array_equal(out, [-FS, FS])

    def test_zero_preserved(self):
        assert DAC(2).quantize(np.array([0.0]), FS)[0] == 0.0


class TestMultiBit:
    @pytest.mark.parametrize("bits", [3, 4, 8, 12])
    def test_output_within_range(self, bits):
        x = np.random.default_rng(1).normal(scale=3 * FS, size=256)
        x = np.concatenate([x, [-FS, FS, 0.0]])
        out = ADC(bits).quantize(x, FS)
        assert np.abs(out).max() <= FS

    @pytest.mark.parametrize("bits", [2, 3, 4, 8])
    def test_zero_is_a_level(self, bits):
        assert ADC(bits).quantize(np.zeros(4), FS).tolist() == [0.0] * 4

    @pytest.mark.parametrize("bits", [3, 4, 8])
    def test_full_scale_is_a_level(self, bits):
        out = ADC(bits).quantize(np.array([FS, -FS]), FS)
        np.testing.assert_array_equal(out, [FS, -FS])

    def test_error_bounded_by_half_step(self):
        bits = 6
        m = 2 ** (bits - 1) - 1
        x = np.random.default_rng(2).uniform(-FS, FS, size=512)
        out = ADC(bits).quantize(x, FS)
        assert np.abs(out - x).max() <= FS / m / 2 + 1e-12

    def test_more_bits_less_error(self):
        x = np.random.default_rng(3).uniform(-FS, FS, size=512)
        errs = [
            np.abs(ADC(bits).quantize(x, FS) - x).max() for bits in (2, 4, 8)
        ]
        assert errs[0] > errs[1] > errs[2]


class TestIdealAndInvalid:
    def test_ideal_pass_through(self):
        x = np.random.default_rng(4).normal(size=8)
        assert DAC(None).quantize(x, FS) is x

    def test_nonpositive_full_scale_pass_through(self):
        x = np.random.default_rng(5).normal(size=8)
        assert _UniformQuantizer(4).quantize(x, 0.0) is x

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError):
            DAC(0)
        with pytest.raises(ValueError):
            ADC(-3)

    def test_levels_property(self):
        assert DAC(None).levels is None
        assert DAC(3).levels == 8
