"""Layer semantics and the Sequential container's splicing support."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3, seed=0)
        assert layer(Tensor(np.zeros((4, 5)))).shape == (4, 3)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False, seed=0)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 5))))
        np.testing.assert_allclose(out.data, np.zeros((1, 3)))

    def test_deterministic_init_by_seed(self):
        a = nn.Linear(5, 3, seed=42)
        b = nn.Linear(5, 3, seed=42)
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_init_schemes(self):
        for scheme in ("kaiming", "xavier", "orthogonal"):
            layer = nn.Linear(8, 8, seed=0, weight_init=scheme)
            assert np.isfinite(layer.weight.data).all()

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError):
            nn.Linear(2, 2, weight_init="bogus")


class TestConv2d:
    def test_output_shape_same_padding(self):
        conv = nn.Conv2d(3, 8, 3, padding=1, seed=0)
        assert conv(Tensor(np.zeros((2, 3, 6, 6)))).shape == (2, 8, 6, 6)

    def test_stride(self):
        conv = nn.Conv2d(1, 1, 2, stride=2, seed=0)
        assert conv(Tensor(np.zeros((1, 1, 6, 6)))).shape == (1, 1, 3, 3)

    def test_rectangular_kernel(self):
        conv = nn.Conv2d(1, 2, (1, 3), seed=0)
        assert conv(Tensor(np.zeros((1, 1, 5, 5)))).shape == (1, 2, 5, 3)


class TestActivations:
    def test_relu_module(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 1.0])))
        np.testing.assert_allclose(out.data, [0.0, 1.0])

    def test_softmax_module_rows_sum_one(self):
        out = nn.Softmax()(Tensor(np.random.default_rng(0).normal(size=(3, 5))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_tanh_sigmoid_ranges(self):
        x = Tensor(np.linspace(-5, 5, 11))
        assert (np.abs(nn.Tanh()(x).data) <= 1).all()
        s = nn.Sigmoid()(x).data
        assert ((s >= 0) & (s <= 1)).all()


class TestContainers:
    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x

    def test_sequential_order(self):
        seq = nn.Sequential(nn.Linear(4, 8, seed=0), nn.ReLU(),
                            nn.Linear(8, 2, seed=1))
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)
        out = seq(Tensor(np.zeros((1, 4))))
        assert out.shape == (1, 2)

    def test_sequential_setitem_splices(self):
        seq = nn.Sequential(nn.Linear(4, 4, seed=0), nn.ReLU())
        replacement = nn.Identity()
        seq[1] = replacement
        assert seq[1] is replacement
        # registration updated too (parameters/modules traversal)
        assert any(m is replacement for m in seq.modules())

    def test_sequential_append(self):
        seq = nn.Sequential(nn.Linear(2, 2, seed=0))
        seq.append(nn.ReLU())
        assert len(seq) == 2

    def test_sequential_iter(self):
        mods = [nn.Linear(2, 2, seed=0), nn.ReLU()]
        seq = nn.Sequential(*mods)
        assert [type(m) for m in seq] == [nn.Linear, nn.ReLU]


class TestDropoutLayer:
    def test_eval_identity(self):
        layer = nn.Dropout(0.9, seed=0)
        layer.eval()
        x = Tensor(np.ones(50))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_train_zeroes_some(self):
        layer = nn.Dropout(0.5, seed=0)
        out = layer(Tensor(np.ones(1000)))
        assert (out.data == 0).sum() > 300

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = nn.BatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(16, 3, 4, 4)))
        out = bn(x).data
        assert abs(out.mean()) < 1e-6
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2)
        x = np.random.default_rng(0).normal(3.0, 2.0, size=(64, 2))
        for _ in range(50):
            bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x)).data
        assert abs(out.mean()) < 0.2

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(Tensor(np.zeros((2, 2))))
        with pytest.raises(ValueError):
            nn.BatchNorm1d(2)(Tensor(np.zeros((2, 2, 2, 2))))


class TestLosses:
    def test_mse_value(self):
        loss = nn.MSELoss()(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_cross_entropy_module(self):
        loss = nn.CrossEntropyLoss()(
            Tensor(np.zeros((2, 4))), np.array([0, 1])
        )
        assert loss.item() == pytest.approx(np.log(4))


class TestFlattenStacked:
    def test_flatten_channel_major_stack(self):
        """5-D channel-major stacks (S, C, N, H, W) flatten to (S, N, C*H*W)
        with the same per-image feature order as the 4-D case."""
        import numpy as np
        from repro.autograd import Tensor
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 2, 4, 2, 2))  # (S, C, N, H, W)
        out = nn.Flatten()(Tensor(x))
        assert out.shape == (3, 4, 8)
        for s in range(3):
            ref = nn.Flatten()(Tensor(x[s].transpose(1, 0, 2, 3))).data
            np.testing.assert_array_equal(out.data[s], ref)
