"""ResNet / attention families: branch graphs on every Monte-Carlo engine.

The graph-general sample-axis contract, end to end: models with residual
fan-in (``resnet8``) and attention blocks (``attnmlp``) must ride the
loop, vectorized and pool engines with identical per-draw results in the
weight domain — ``resnet8`` additionally after ``analogize`` — and every
consumer of layer ordering (injector, cost model, layer sweep,
``analogize``) must agree on the one canonical walk.
"""

import subprocess
import sys

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor
from repro.data import synth_cifar10
from repro.evaluation import MonteCarloEvaluator, supports_sample_axis
from repro.evaluation.vectorized import sample_axis_blockers
from repro.hardware import analog_layers, analogize
from repro.hardware.cost import CrossbarCostModel
from repro.models import AttnMLP, build_model, available_models, ResNet8
from repro.variation import LogNormalVariation, VariationInjector, weighted_layers

COMPOSED_SPEC = "lognormal:0.4+quant:4"


@pytest.fixture(scope="module")
def cifar():
    return synth_cifar10(train_per_class=2, test_per_class=2)


@pytest.fixture(scope="module")
def cifar_test(cifar):
    return cifar[1]


def _resnet(cifar, name="resnet8"):
    return build_model(name, cifar[0], width=0.25, seed=0)


def _attnmlp(cifar):
    return build_model("attnmlp", cifar[0], width=0.25, seed=0)


class TestResNet8:
    def test_forward_shape(self, cifar):
        model = _resnet(cifar)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 10)

    def test_ten_weighted_layers_in_execution_order(self, cifar):
        """Stem, three blocks (body convs before the downsample shortcut),
        head — the canonical walk's order is the paper's layer indexing."""
        names = [name for name, _ in weighted_layers(_resnet(cifar))]
        assert names == [
            "net.0",
            "net.2.residual.body.0",
            "net.2.residual.body.2",
            "net.3.residual.body.0",
            "net.3.residual.body.2",
            "net.3.residual.shortcut.0",
            "net.4.residual.body.0",
            "net.4.residual.body.2",
            "net.4.residual.shortcut.0",
            "net.6",
        ]

    def test_batch_norm_variant(self, cifar):
        model = _resnet(cifar, "resnet8bn")
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 10)
        # BN affine/stats are peripheral: same crossbar-mapped layer count.
        assert len(weighted_layers(model)) == 10

    def test_sample_aware_in_eval_mode(self, cifar):
        model = _resnet(cifar, "resnet8bn")
        model.train()
        assert not supports_sample_axis(model)  # batch stats block stacking
        model.eval()
        assert supports_sample_axis(model)
        assert sample_axis_blockers(model) == []

    def test_stacked_forward_shape(self, cifar):
        model = _resnet(cifar).eval()
        inj = VariationInjector(model, LogNormalVariation(0.3))
        with inj.applied_stack(inj.sample_batch(3, seed=0)):
            logits = model(Tensor(np.zeros((2, 3, 16, 16))))
        assert logits.shape == (3, 2, 10)


class TestAttnMLP:
    def test_forward_shape(self, cifar):
        model = _attnmlp(cifar)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 10)

    def test_eight_weighted_layers(self, cifar):
        names = [name for name, _ in weighted_layers(_attnmlp(cifar))]
        assert names == [
            "patch_embed",
            "attn_block.body.1.q_proj",
            "attn_block.body.1.k_proj",
            "attn_block.body.1.v_proj",
            "attn_block.body.1.out_proj",
            "mlp_block.body.1.linear",
            "mlp_block.body.3.linear",
            "head",
        ]

    def test_sample_aware(self, cifar):
        model = _attnmlp(cifar).eval()
        assert supports_sample_axis(model)
        assert sample_axis_blockers(model) == []

    def test_stacked_forward_shape(self, cifar):
        model = _attnmlp(cifar).eval()
        inj = VariationInjector(model, LogNormalVariation(0.3))
        with inj.applied_stack(inj.sample_batch(4, seed=2)):
            logits = model(Tensor(np.zeros((3, 3, 16, 16))))
        assert logits.shape == (4, 3, 10)


class TestRegistry:
    def test_new_families_listed(self):
        names = available_models()
        assert "resnet8" in names
        assert "resnet8bn" in names
        assert "attnmlp" in names

    @pytest.mark.parametrize("name", ["resnet8", "resnet8bn", "attnmlp"])
    def test_build_and_forward(self, cifar, name):
        model = build_model(name, cifar[0], width=0.25, seed=0)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 10)

    @pytest.mark.parametrize("name", ["resnet8", "attnmlp"])
    def test_deterministic_by_seed(self, cifar, name):
        a = build_model(name, cifar[0], width=0.25, seed=3)
        b = build_model(name, cifar[0], width=0.25, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestStackedParity:
    """Stacked weight-domain logits vs the per-draw reference loop.

    The stacked weights themselves are bitwise paired (``sample_batch``
    slice i == the loop's draw i); logits follow to the float ulp — exactly
    for the batched-matmul attention path, and within GEMM-lowering ulp
    noise for the conv path (the tolerance the stacked conv kernels are
    specified to, see ``tests/test_autograd_functional.py``).
    """

    def _pairs(self, model, n=3, seed=7):
        inj = VariationInjector(model, LogNormalVariation(0.4))
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3, 16, 16)))
        stacks = inj.sample_batch(n, seed=seed)
        with inj.applied_stack(stacks):
            stacked = model(x).data.copy()
        loop = []
        for s in range(n):
            with inj.applied_stack(
                {name: arr[s][None] for name, arr in stacks.items()}
            ):
                loop.append(model(x).data[0])
        return stacked, np.stack(loop)

    def test_resnet8_logits_paired_to_ulp(self, cifar):
        stacked, loop = self._pairs(_resnet(cifar).eval())
        np.testing.assert_allclose(stacked, loop, rtol=0, atol=1e-12)

    def test_attnmlp_logits_paired_bitwise(self, cifar):
        stacked, loop = self._pairs(_attnmlp(cifar).eval())
        np.testing.assert_array_equal(stacked, loop)


class TestEnginePairing:
    """Loop, vectorized and pool produce identical accuracy lists under a
    composed spec — engine choice stays a pure performance knob on branch
    graphs."""

    def _results(self, model, dataset, n_samples=4, seed=9):
        return [
            MonteCarloEvaluator(dataset, n_samples=n_samples, seed=seed,
                                **kwargs).evaluate(model, COMPOSED_SPEC)
            for kwargs in (dict(vectorized=False),
                           dict(vectorized=True, sample_chunk=3),
                           dict(vectorized=False, n_workers=2))
        ]

    @pytest.mark.parametrize("name", ["resnet8", "resnet8bn", "attnmlp"])
    def test_all_engines_agree(self, cifar, cifar_test, name):
        model = build_model(name, cifar[0], width=0.25, seed=0)
        loop, vec, pool = self._results(model, cifar_test)
        assert vec.accuracies == loop.accuracies
        assert pool.accuracies == loop.accuracies
        assert len(loop.accuracies) == 4

    def test_vectorized_plan_granted(self, cifar, cifar_test):
        model = _resnet(cifar).eval()
        ev = MonteCarloEvaluator(cifar_test, n_samples=2, vectorized=True)
        plan = ev.plan(model, COMPOSED_SPEC)
        assert plan.backend == "vectorized"
        assert plan.backend_reason is None


class TestResNet8Analog:
    """Residual graphs in the analog domain: ``analogize`` preserves the
    branch topology and the analog engines stay paired."""

    def test_topology_and_order_preserved(self, cifar):
        model = _resnet(cifar)
        digital_names = [name for name, _ in weighted_layers(model)]
        analog = analogize(model, variation=LogNormalVariation(0.3), seed=5)
        assert [name for name, _ in analog_layers(analog)] == digital_names
        # the residual containers survive conversion
        assert isinstance(analog.net[2].residual, nn.Residual)
        assert isinstance(analog.net[3].residual.shortcut, nn.Sequential)

    def test_forward_after_analogize(self, cifar):
        model = _resnet(cifar)
        x = Tensor(np.random.default_rng(3).normal(size=(2, 3, 16, 16)))
        clean = model(x).data.copy()
        analog = analogize(model, variation=LogNormalVariation(0.5), seed=5)
        out = analog(x).data
        assert out.shape == (2, 10)
        assert not np.allclose(out, clean)

    def test_analog_engines_agree(self, cifar, cifar_test):
        analog = analogize(_resnet(cifar), tile_size=16,
                           read_noise_sigma=0.002)
        loop = MonteCarloEvaluator(cifar_test, n_samples=3, seed=4,
                                   vectorized=False)
        vec = MonteCarloEvaluator(cifar_test, n_samples=3, seed=4,
                                  vectorized=True, sample_chunk=2)
        r_loop = loop.evaluate(analog, COMPOSED_SPEC)
        r_vec = vec.evaluate(analog, COMPOSED_SPEC)
        assert r_vec.accuracies == r_loop.accuracies
        assert len(r_vec.accuracies) == 3

    _SNIPPET = (
        "import numpy as np\n"
        "from repro.hardware import analogize, analog_layers\n"
        "from repro.models import ResNet8\n"
        "from repro.variation import LogNormalVariation\n"
        "m = ResNet8(num_classes=10, in_channels=3, base_width=4, seed=0)\n"
        "analogize(m, variation=LogNormalVariation(0.5), seed={seed!r})\n"
        "digest = [float(l.array.effective_weights().sum())\n"
        "          for _, l in analog_layers(m)]\n"
        "print(repr(digest))\n"
    )

    def _digest_in_subprocess(self, seed, hashseed):
        import os
        env = dict(os.environ, PYTHONHASHSEED=str(hashseed))
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", self._SNIPPET.format(seed=seed)],
            capture_output=True, text=True, env=env, check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        return out.stdout.strip()

    @pytest.mark.parametrize("seed", [1234, "chip-b"])
    def test_seeding_stable_across_hash_randomization(self, seed):
        """Branch-graph traversal must not leak hash order into per-layer
        programming seeds: the same seed programs the same chip in any
        process."""
        a = self._digest_in_subprocess(seed, hashseed=1)
        b = self._digest_in_subprocess(seed, hashseed=2)
        assert a == b


class TestCanonicalWalkAgreement:
    """Every layer-ordering consumer sees the same layers in the same
    order — the whole point of the shared graph walk."""

    def test_cost_model_names_match_walk(self, cifar):
        model = _resnet(cifar)
        report = CrossbarCostModel().estimate(model, spatial_sites=16)
        assert list(report.per_layer) == [
            name for name, _ in weighted_layers(model)
        ]

    def test_injector_order_matches_walk(self, cifar):
        model = _resnet(cifar)
        inj = VariationInjector(model, LogNormalVariation(0.3))
        drawn = list(inj.sample(seed=0))
        assert drawn == [
            f"{name}.weight" for name, _ in weighted_layers(model)
        ]

    def test_layer_sweep_indexes_every_layer(self, cifar, cifar_test):
        from repro.evaluation import layer_sweep

        model = _attnmlp(cifar)
        ev = MonteCarloEvaluator(cifar_test, n_samples=1, seed=0,
                                 vectorized=True)
        results = layer_sweep(model, LogNormalVariation(0.2), ev)
        assert [i for i, _ in results] == list(
            range(1, len(weighted_layers(model)) + 1)
        )


class TestEligibilityIsAttributeDriven:
    """Satellite regression: vectorized-engine eligibility has exactly one
    source of truth — the ``sample_aware`` declarations."""

    def test_no_leaf_allowlist_exists(self):
        import repro.evaluation.vectorized as vectorized

        assert not hasattr(vectorized, "SAMPLE_AWARE_LEAVES")

    def test_ad_hoc_declared_module_is_admitted(self):
        """A module the library has never heard of rides the vectorized
        engine purely by declaring the attribute — no registry to update,
        nothing to drift."""

        class Doubler(nn.Module):
            sample_aware = True

            def forward(self, x):
                return x * 2.0

        model = nn.Sequential(nn.Flatten(), Doubler(),
                              nn.Linear(4, 3, seed=0))
        model.eval()
        assert supports_sample_axis(model)
        assert sample_axis_blockers(model) == []

    def test_undeclared_module_is_named_as_blocker(self):
        class Mystery(nn.Module):
            def forward(self, x):
                return x

        model = nn.Sequential(nn.Flatten(), Mystery())
        model.eval()
        assert not supports_sample_axis(model)
        assert sample_axis_blockers(model) == ["1 (Mystery)"]
