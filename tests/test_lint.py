"""Tests for ``repro.lint`` (reprolint).

Each rule gets one flagging fixture and one passing fixture, written to a
tmp tree whose directory names trigger the rule's path scoping (library
rules skip ``tests``-like dirs; engine rules only fire under
``evaluation``/``hardware``/``variation``; sample-axis rules under the
layer-library dirs). A final test self-runs the full rule set on
``src/repro`` and asserts the shipped tree is clean, and an
importorskip-gated test runs ``mypy --strict`` on the annotated core.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, Violation, collect_files, main, run_lint
from repro.lint.rules import (
    BareExceptRule,
    HashSeedRule,
    LegacyNumpyRandomRule,
    MutableDefaultRule,
    RngConstructionRule,
    SampleAwareDeclarationRule,
    SetIterationRule,
    SpecRegistryRule,
    SpecSerializationPairRule,
    StackedBranchRule,
    WallClockRule,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(tmp_path, relpath, code, rule_cls=None):
    """Write ``code`` at ``tmp_path/relpath`` and lint it with one rule
    (or the full set when ``rule_cls`` is None)."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    rules = None if rule_cls is None else [rule_cls()]
    report, errors = run_lint([path], rules=rules)
    assert not errors
    return report


def rule_ids(report):
    return [v.rule_id for v in report.violations]


# ---------------------------------------------------------------------------
# RNG001 — legacy global-state numpy randomness
# ---------------------------------------------------------------------------
class TestLegacyNumpyRandom:
    def test_flags_seed_and_legacy_draws(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/stuff.py",
            """
            import numpy as np
            np.random.seed(3)
            x = np.random.normal(0.0, 1.0)
            """,
            LegacyNumpyRandomRule,
        )
        assert rule_ids(report) == ["RNG001", "RNG001"]

    def test_flags_legacy_import(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/stuff.py",
            "from numpy.random import randint\n",
            LegacyNumpyRandomRule,
        )
        assert rule_ids(report) == ["RNG001"]

    def test_passes_generator_usage(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/stuff.py",
            """
            from repro.utils.rng import new_rng
            rng = new_rng(0)
            x = rng.normal(0.0, 1.0)
            """,
            LegacyNumpyRandomRule,
        )
        assert report.ok

    def test_applies_even_in_test_scope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "tests/test_stuff.py",
            "import numpy as np\nnp.random.seed(3)\n",
            LegacyNumpyRandomRule,
        )
        assert rule_ids(report) == ["RNG001"]


# ---------------------------------------------------------------------------
# RNG002 — generator construction outside utils/rng
# ---------------------------------------------------------------------------
class TestRngConstruction:
    def test_flags_default_rng_in_library(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/engine.py",
            """
            import numpy as np
            rng = np.random.default_rng(3)
            seq = np.random.SeedSequence(7)
            """,
            RngConstructionRule,
        )
        assert rule_ids(report) == ["RNG002", "RNG002"]

    def test_flags_bare_name_import_and_call(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/engine.py",
            """
            from numpy.random import default_rng
            rng = default_rng(3)
            """,
            RngConstructionRule,
        )
        assert rule_ids(report) == ["RNG002", "RNG002"]

    def test_passes_inside_utils_rng(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "utils/rng.py",
            "import numpy as np\nrng = np.random.default_rng(3)\n",
            RngConstructionRule,
        )
        assert report.ok

    def test_passes_in_test_scope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "tests/test_engine.py",
            "import numpy as np\nrng = np.random.default_rng(3)\n",
            RngConstructionRule,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RNG003 — hash()-derived seeds
# ---------------------------------------------------------------------------
class TestHashSeed:
    def test_flags_hash_derived_seed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/engine.py",
            """
            def layer_seed(seed, index):
                return hash((seed, index)) % 2**31
            """,
            HashSeedRule,
        )
        assert rule_ids(report) == ["RNG003"]

    def test_passes_inside_dunder_hash(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/engine.py",
            """
            class Spec:
                def __hash__(self):
                    return hash((type(self).__name__, self.sigma))
            """,
            HashSeedRule,
        )
        assert report.ok

    def test_suppression_comment(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/engine.py",
            """
            def check(a, b):
                return hash(a) == hash(b)  # reprolint: disable=RNG003
            """,
            HashSeedRule,
        )
        assert report.ok
        assert report.suppressed == 2

    def test_bare_disable_suppresses_all_rules(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/engine.py",
            "seed = hash('chip-a')  # reprolint: disable\n",
            HashSeedRule,
        )
        assert report.ok
        assert report.suppressed == 1

    def test_suppression_of_other_rule_does_not_hide(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/engine.py",
            "seed = hash('chip-a')  # reprolint: disable=HYG001\n",
            HashSeedRule,
        )
        assert rule_ids(report) == ["RNG003"]


# ---------------------------------------------------------------------------
# DET001 — wall clock / environment reads in engine paths
# ---------------------------------------------------------------------------
class TestWallClock:
    def test_flags_time_and_environ_in_engine_dir(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "evaluation/engine.py",
            """
            import os
            import time
            start = time.time()
            flag = os.environ.get("FAST")
            level = os.getenv("LEVEL")
            """,
            WallClockRule,
        )
        assert rule_ids(report) == ["DET001", "DET001", "DET001"]

    def test_passes_outside_engine_dirs(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "utils/timing.py",
            "import time\nstart = time.time()\n",
            WallClockRule,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# DET002 — set iteration in engine paths
# ---------------------------------------------------------------------------
class TestSetIteration:
    def test_flags_set_literal_iteration(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "variation/engine.py",
            """
            def names(layers):
                out = []
                for name in {"a", "b", "c"}:
                    out.append(name)
                return out
            """,
            SetIterationRule,
        )
        assert rule_ids(report) == ["DET002"]

    def test_flags_set_call_in_comprehension(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "hardware/engine.py",
            "vals = [v for v in set((1, 2, 3))]\n",
            SetIterationRule,
        )
        assert rule_ids(report) == ["DET002"]

    def test_passes_sorted_iteration(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "evaluation/engine.py",
            """
            def names(keys):
                return [k for k in sorted(set(keys))]
            """,
            SetIterationRule,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# AXS001 — sample_aware declarations on layer-library Module subclasses
# ---------------------------------------------------------------------------
class TestSampleAwareDeclaration:
    def test_flags_undeclared_module_subclass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "nn/layers.py",
            """
            class Module:
                pass

            class Squish(Module):
                def forward(self, x):
                    return x
            """,
            SampleAwareDeclarationRule,
        )
        assert rule_ids(report) == ["AXS001"]
        assert "Squish" in report.violations[0].message

    def test_passes_with_declaration_forms(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "nn/layers.py",
            """
            class Module:
                pass

            class ClassAttr(Module):
                sample_aware = False

            class InstanceAttr(Module):
                def __init__(self, axis):
                    self.sample_aware = axis == -1

            class PropertyStyle(Module):
                @property
                def sample_aware(self):
                    return not self.training
            """,
            SampleAwareDeclarationRule,
        )
        assert report.ok

    def test_inherited_declaration_counts(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "nn/layers.py",
            """
            class Module:
                pass

            class Base(Module):
                sample_aware = True

            class Child(Base):
                def forward(self, x):
                    return x
            """,
            SampleAwareDeclarationRule,
        )
        assert report.ok

    def test_skips_non_layer_dirs(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "core/trainer.py",
            """
            class Module:
                pass

            class Helper(Module):
                pass
            """,
            SampleAwareDeclarationRule,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# AXS002 — stacked-activation branch in sample_aware forwards
# ---------------------------------------------------------------------------
class TestStackedBranch:
    def test_flags_rank_sensitive_forward_without_ndim(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "nn/layers.py",
            """
            class Module:
                pass

            class Flatten(Module):
                sample_aware = True

                def forward(self, x):
                    return x.reshape(x.shape[0], -1)
            """,
            StackedBranchRule,
        )
        assert rule_ids(report) == ["AXS002"]

    def test_passes_with_ndim_dispatch(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "nn/layers.py",
            """
            class Module:
                pass

            class Flatten(Module):
                sample_aware = True

                def forward(self, x):
                    if x.ndim == 5:
                        return x.reshape(x.shape[0], x.shape[1], -1)
                    return x.reshape(x.shape[0], -1)
            """,
            StackedBranchRule,
        )
        assert report.ok

    def test_passes_elementwise_forward(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "nn/layers.py",
            """
            class Module:
                pass

            class ReLU(Module):
                sample_aware = True

                def forward(self, x):
                    return x.relu()
            """,
            StackedBranchRule,
        )
        assert report.ok

    def test_flags_front_counted_axis_reduction(self, tmp_path):
        """A mean over axis 1 indexes from the front: under a leading
        sample axis it reduces the wrong dimension."""
        report = lint_snippet(
            tmp_path,
            "nn/pool.py",
            """
            class Module:
                pass

            class ChannelPool(Module):
                sample_aware = True

                def forward(self, x):
                    return x.mean(axis=(2, 3))
            """,
            StackedBranchRule,
        )
        assert rule_ids(report) == ["AXS002"]

    def test_passes_trailing_axis_reduction(self, tmp_path):
        """Negative axes count from the back — layout-safe under the
        leading sample axis, no dispatch needed (the LayerNorm shape)."""
        report = lint_snippet(
            tmp_path,
            "nn/norm.py",
            """
            class Module:
                pass

            class Norm(Module):
                sample_aware = True

                def forward(self, x):
                    mean = x.mean(axis=-1, keepdims=True)
                    return (x - mean) / x.var(axis=(-2, -1)) ** 0.5
            """,
            StackedBranchRule,
        )
        assert report.ok

    def test_passes_axis_reduction_with_ndim_dispatch(self, tmp_path):
        """The GlobalAvgPool2d shape: front-counted axes are fine once the
        forward dispatches on the stacked rank."""
        report = lint_snippet(
            tmp_path,
            "nn/pool.py",
            """
            class Module:
                pass

            class GlobalPool(Module):
                sample_aware = True

                def forward(self, x):
                    if x.ndim == 5:
                        return x.mean(axis=(3, 4))
                    return x.mean(axis=(2, 3))
            """,
            StackedBranchRule,
        )
        assert report.ok

    def test_passes_full_reduction_without_axis(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "nn/stat.py",
            """
            class Module:
                pass

            class Mean(Module):
                sample_aware = True

                def forward(self, x):
                    return x - x.mean()
            """,
            StackedBranchRule,
        )
        assert report.ok


class TestAxisRulesCoverRepo:
    """The shipped layer library itself satisfies the axis rules — in
    particular the new structural/attention modules declare sample_aware
    (AXS001) and every rank-sensitive forward dispatches on ndim
    (AXS002)."""

    def test_structural_and_attention_modules_declared(self):
        import repro.nn as nn
        from repro.models import AttnMLP, BasicBlock, ResNet8

        for cls in (nn.Add, nn.Concat, nn.Residual, nn.GlobalAvgPool2d,
                    nn.LayerNorm, nn.SelfAttention, BasicBlock, ResNet8,
                    AttnMLP):
            # declared on the class or inherited from a project base other
            # than Module itself (Add/Concat inherit from _Branches) —
            # exactly what AXS001 accepts
            assert any(
                "sample_aware" in vars(base)
                for base in cls.__mro__
                if base is not nn.Module
            ), cls.__name__

    def test_repo_layer_library_is_clean(self):
        root = REPO_ROOT / "src" / "repro"
        report, errors = run_lint(
            [root / "nn", root / "models"],
            rules=[SampleAwareDeclarationRule(), StackedBranchRule()],
        )
        assert not errors
        assert report.ok, [v.message for v in report.violations]


# ---------------------------------------------------------------------------
# SPEC001 — spec-registry completeness
# ---------------------------------------------------------------------------
class TestSpecRegistry:
    def test_flags_unregistered_concrete_model(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "variation/extra.py",
            """
            class VariationModel:
                pass

            class BrandNewVariation(VariationModel):
                def perturb(self, weights, rng):
                    return weights
            """,
            SpecRegistryRule,
        )
        assert rule_ids(report) == ["SPEC001"]
        assert "BrandNewVariation" in report.violations[0].message

    def test_passes_registered_name_and_abstract_base(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "variation/extra.py",
            """
            class VariationModel:
                pass

            class GaussianVariation(VariationModel):
                def perturb(self, weights, rng):
                    return weights

            class _Internal(VariationModel):
                def perturb(self, weights, rng):
                    return weights

            class AbstractIntermediate(VariationModel):
                def scaled(self, factor):
                    return self
            """,
            SpecRegistryRule,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# SPEC002 — to_dict/from_dict pairing
# ---------------------------------------------------------------------------
class TestSpecSerializationPair:
    def test_flags_one_sided_serialization(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "variation/extra.py",
            """
            class VariationModel:
                pass

            class Lopsided(VariationModel):
                def to_dict(self):
                    return {"kind": "lopsided"}
            """,
            SpecSerializationPairRule,
        )
        assert rule_ids(report) == ["SPEC002"]

    def test_passes_paired_or_absent(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "variation/extra.py",
            """
            class VariationModel:
                pass

            class Paired(VariationModel):
                def to_dict(self):
                    return {"kind": "paired"}

                @classmethod
                def from_dict(cls, payload):
                    return cls()

            class Introspected(VariationModel):
                pass
            """,
            SpecSerializationPairRule,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# HYG001 — mutable default arguments
# ---------------------------------------------------------------------------
class TestMutableDefault:
    def test_flags_mutable_defaults(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/helpers.py",
            """
            def collect(x, out=[], lookup={}, *, seen=set()):
                return out
            """,
            MutableDefaultRule,
        )
        assert rule_ids(report) == ["HYG001", "HYG001", "HYG001"]

    def test_passes_none_default(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/helpers.py",
            """
            def collect(x, out=None, shape=(1, 2)):
                out = [] if out is None else out
                return out
            """,
            MutableDefaultRule,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# HYG002 — bare except
# ---------------------------------------------------------------------------
class TestBareExcept:
    def test_flags_bare_except(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/helpers.py",
            """
            def safe(fn):
                try:
                    return fn()
                except:
                    return None
            """,
            BareExceptRule,
        )
        assert rule_ids(report) == ["HYG002"]

    def test_passes_typed_except(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/helpers.py",
            """
            def safe(fn):
                try:
                    return fn()
                except ValueError:
                    return None
            """,
            BareExceptRule,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------
class TestEngine:
    def test_all_rules_have_unique_ids_and_docs(self):
        ids = [cls.id for cls in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 6
        for cls in ALL_RULES:
            assert cls.id and cls.name and cls.summary

    def test_violations_sorted_and_formatted(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/multi.py",
            """
            import numpy as np

            def f(out=[]):
                np.random.seed(0)
                return out
            """,
        )
        assert rule_ids(report) == ["HYG001", "RNG001"]
        lines = [v.format() for v in report.violations]
        assert all(str(tmp_path / "pkg/multi.py") in line for line in lines)
        assert "HYG001" in lines[0] and "RNG001" in lines[1]

    def test_parse_errors_reported_not_raised(self, tmp_path):
        bad = tmp_path / "pkg" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report, errors = run_lint([bad])
        assert report.ok
        assert len(errors) == 1 and "broken.py" in errors[0]

    def test_collect_files_skips_hidden_and_dedupes(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
        files = collect_files([tmp_path, tmp_path / "pkg" / "a.py"])
        assert [f.name for f in files] == ["a.py"]

    def test_suppression_counted_in_summary(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "pkg/engine.py",
            "seed = hash('x')  # reprolint: disable=RNG003\n",
            HashSeedRule,
        )
        assert "suppressed" in report.summary()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.id in out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "pkg" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        good = tmp_path / "pkg" / "good.py"
        good.parent.mkdir(parents=True)
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_exit_two_on_unknown_rule(self, capsys):
        assert main(["--select", "NOPE999", "src"]) == 2

    def test_select_subset(self, tmp_path, capsys):
        bad = tmp_path / "pkg" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert main(["--select", "HYG002", str(bad)]) == 0


# ---------------------------------------------------------------------------
# The self-run contract and the strict-typing gate
# ---------------------------------------------------------------------------
class TestSelfRun:
    def test_src_repro_is_clean(self):
        report, errors = run_lint([REPO_ROOT / "src" / "repro"])
        assert not errors
        assert report.ok, "\n".join(v.format() for v in report.violations)
        assert report.rules_run >= 6
        assert report.files_checked > 50

    def test_tests_are_clean_too(self):
        report, errors = run_lint([REPO_ROOT / "tests"])
        assert not errors
        assert report.ok, "\n".join(v.format() for v in report.violations)


def test_mypy_strict_core():
    pytest.importorskip("mypy")
    targets = [
        "src/repro/utils",
        "src/repro/variation/models.py",
        "src/repro/variation/spec.py",
        "src/repro/evaluation/plan.py",
        "src/repro/evaluation/executor.py",
        "src/repro/lint",
    ]
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", *targets],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
