"""Baseline methods [8]/[9]/[11]: masks, protection effect, training."""

import numpy as np
import pytest

from repro.baselines import (
    ImportantWeightProtection, RandomSparseAdaptation, StatisticalTraining,
)
from repro.baselines.common import magnitude_masks, masks_overhead, random_masks
from repro.evaluation import MonteCarloEvaluator, accuracy
from repro.models import MLP
from repro.variation import LogNormalVariation


@pytest.fixture()
def trained_mlp(blob_dataset):
    from repro.core import Trainer
    from repro.optim import Adam

    model = MLP(4, [16], 3, flatten_input=True, seed=0)
    trainer = Trainer(model, Adam(list(model.parameters()), lr=0.01), seed=0)
    trainer.fit(blob_dataset, epochs=30, batch_size=16)
    assert accuracy(model, blob_dataset) > 0.9
    return model


class TestMasks:
    def test_magnitude_masks_fraction(self, mlp):
        masks = magnitude_masks(mlp, 0.1)
        protected = sum(m.sum() for m in masks.values())
        weights = sum(m.size for m in masks.values())
        assert protected / weights == pytest.approx(0.1, abs=0.03)

    def test_magnitude_masks_pick_largest(self, mlp):
        masks = magnitude_masks(mlp, 0.2)
        for name, layer_mask in masks.items():
            param = dict(mlp.named_parameters())[name]
            if layer_mask.any() and (~layer_mask).any():
                assert (np.abs(param.data[layer_mask]).min()
                        >= np.abs(param.data[~layer_mask]).max() - 1e-12)

    def test_random_masks_fraction(self, mlp):
        masks = random_masks(mlp, 0.3, np.random.default_rng(0))
        protected = sum(m.sum() for m in masks.values())
        weights = sum(m.size for m in masks.values())
        assert protected / weights == pytest.approx(0.3, abs=0.1)

    def test_zero_fraction_empty(self, mlp):
        masks = magnitude_masks(mlp, 0.0)
        assert all(not m.any() for m in masks.values())

    def test_invalid_fraction(self, mlp):
        with pytest.raises(ValueError):
            magnitude_masks(mlp, 1.5)
        with pytest.raises(ValueError):
            random_masks(mlp, -0.1, np.random.default_rng(0))

    def test_overhead_accounting(self, mlp):
        masks = magnitude_masks(mlp, 0.25)
        overhead = masks_overhead(mlp, masks)
        assert 0 < overhead < 0.3


class TestProtection:
    def test_protection_improves_over_none(self, trained_mlp, blob_dataset):
        var = LogNormalVariation(0.6)
        unprotected = ImportantWeightProtection(trained_mlp, 0.0).evaluate(
            var, blob_dataset, n_samples=10, seed=3
        )
        protected = ImportantWeightProtection(trained_mlp, 0.5).evaluate(
            var, blob_dataset, n_samples=10, seed=3
        )
        assert protected.accuracy_mean >= unprotected.accuracy_mean

    def test_full_protection_recovers_clean(self, trained_mlp, blob_dataset):
        clean = accuracy(trained_mlp, blob_dataset)
        result = ImportantWeightProtection(trained_mlp, 1.0).evaluate(
            LogNormalVariation(0.8), blob_dataset, n_samples=3, seed=0
        )
        assert result.accuracy_mean == pytest.approx(clean, abs=1e-9)

    def test_online_retraining_requires_train_data(self, trained_mlp,
                                                    blob_dataset):
        method = ImportantWeightProtection(trained_mlp, 0.2)
        with pytest.raises(ValueError):
            method.evaluate(LogNormalVariation(0.5), blob_dataset,
                            n_samples=1, online_retraining=True)

    def test_online_retraining_helps(self, trained_mlp, blob_dataset):
        var = LogNormalVariation(0.7)
        method = ImportantWeightProtection(trained_mlp, 0.3)
        static = method.evaluate(var, blob_dataset, n_samples=5, seed=1)
        adapted = method.evaluate(
            var, blob_dataset, n_samples=5, seed=1,
            online_retraining=True, train_data=blob_dataset,
            adapt_steps=15, adapt_lr=0.02,
        )
        assert adapted.accuracy_mean >= static.accuracy_mean - 0.05
        assert adapted.online_retraining

    def test_nominal_weights_restored(self, trained_mlp, blob_dataset):
        before = {n: p.data.copy() for n, p in trained_mlp.named_parameters()}
        ImportantWeightProtection(trained_mlp, 0.3).evaluate(
            LogNormalVariation(0.5), blob_dataset, n_samples=2, seed=0,
            online_retraining=True, train_data=blob_dataset, adapt_steps=3,
        )
        for name, param in trained_mlp.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])


class TestRSA:
    def test_random_masks_used(self, trained_mlp):
        rsa = RandomSparseAdaptation(trained_mlp, 0.2, seed=0)
        rsa2 = RandomSparseAdaptation(trained_mlp, 0.2, seed=1)
        any_diff = any(
            not np.array_equal(rsa.masks[k], rsa2.masks[k]) for k in rsa.masks
        )
        assert any_diff

    def test_evaluate_runs(self, trained_mlp, blob_dataset):
        result = RandomSparseAdaptation(trained_mlp, 0.2, seed=0).evaluate(
            LogNormalVariation(0.5), blob_dataset, n_samples=3, seed=0,
            train_data=blob_dataset, adapt_steps=5,
        )
        assert result.method == "random-sparse-adaptation"
        assert 0 <= result.accuracy_mean <= 1


class TestStatisticalTraining:
    def test_zero_overhead(self, trained_mlp, blob_dataset):
        method = StatisticalTraining(trained_mlp, LogNormalVariation(0.4),
                                     seed=0)
        method.fit(blob_dataset, epochs=3, batch_size=16)
        result = method.evaluate(blob_dataset, n_samples=5, seed=0)
        assert result.overhead == 0.0

    def test_source_model_untouched(self, trained_mlp, blob_dataset):
        before = {n: p.data.copy() for n, p in trained_mlp.named_parameters()}
        method = StatisticalTraining(trained_mlp, LogNormalVariation(0.4),
                                     seed=0)
        method.fit(blob_dataset, epochs=2, batch_size=16)
        for name, param in trained_mlp.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_improves_robustness(self, trained_mlp, blob_dataset):
        """Noise-aware training must beat the vanilla model under the same
        variation — the core claim of [11]."""
        var = LogNormalVariation(0.6)
        ev = MonteCarloEvaluator(blob_dataset, n_samples=10, seed=5)
        vanilla = ev.evaluate(trained_mlp, var)
        method = StatisticalTraining(trained_mlp, var, lr=5e-3, seed=0)
        method.fit(blob_dataset, epochs=15, batch_size=16)
        robust = ev.evaluate(method.model, var)
        assert robust.mean >= vanilla.mean - 0.02
