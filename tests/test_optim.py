"""Optimizers: convergence, state handling, frozen-parameter skipping."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import (
    SGD, Adam, RMSprop, clip_grad_norm,
    ConstantSchedule, CosineSchedule, StepSchedule,
)


def _quadratic_step(param):
    """Gradient of f(w) = 0.5 ||w - 3||^2."""
    param.grad = param.data - 3.0


def _optimize(opt_cls, steps=300, **kwargs):
    p = Parameter(np.zeros(4))
    opt = opt_cls([p], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        _quadratic_step(p)
        opt.step()
    return p


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _optimize(SGD, lr=0.1)
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-4)

    def test_momentum_converges(self):
        p = _optimize(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.full(3, 10.0))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(3)
        opt.step()
        assert (np.abs(p.data) < 10.0).all()


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _optimize(Adam, lr=0.05)
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_bias_correction_first_step(self):
        # After one step with unit gradient the update is exactly lr.
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(1)
        opt.step()
        assert p.data[0] == pytest.approx(-0.1, rel=1e-5)


class TestRMSprop:
    def test_converges_on_quadratic(self):
        p = _optimize(RMSprop, lr=0.02)
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=0.05)


class TestCommon:
    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_frozen_params_skipped(self):
        p = Parameter(np.zeros(2))
        p.freeze()
        p.grad = np.ones(2)  # grad present but frozen
        opt = SGD([p], lr=1.0)
        opt.step()
        np.testing.assert_allclose(p.data, np.zeros(2))

    def test_none_grad_skipped(self):
        p = Parameter(np.zeros(2))
        SGD([p], lr=1.0).step()  # must not raise
        np.testing.assert_allclose(p.data, np.zeros(2))


class TestClipGradNorm:
    def test_clips_to_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, np.full(4, 0.1))


class TestSchedulers:
    def _opt(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_constant(self):
        opt = self._opt()
        sched = ConstantSchedule(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 1.0

    def test_step_decay(self):
        opt = self._opt()
        sched = StepSchedule(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineSchedule(opt, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone_decreasing(self):
        opt = self._opt()
        sched = CosineSchedule(opt, total_epochs=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StepSchedule(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineSchedule(self._opt(), total_epochs=0)
