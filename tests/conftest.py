"""Shared fixtures: tiny datasets and models sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset, synth_mnist
from repro.models import LeNet5, MLP


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_mnist():
    """Small synthetic MNIST split shared (read-only) across tests."""
    return synth_mnist(train_per_class=8, test_per_class=4)


@pytest.fixture(scope="session")
def tiny_train(tiny_mnist):
    return tiny_mnist[0]


@pytest.fixture(scope="session")
def tiny_test(tiny_mnist):
    return tiny_mnist[1]


@pytest.fixture()
def lenet():
    """A small, fresh LeNet-5 (width 0.5) per test."""
    return LeNet5(num_classes=10, in_channels=1, input_size=16,
                  width_multiplier=0.5, seed=0)


@pytest.fixture()
def mlp():
    """A tiny fresh MLP consuming (N, 1, 2, 2) blob images (4 features)."""
    return MLP(4, [8], 3, flatten_input=True, seed=0)


@pytest.fixture()
def blob_dataset(rng):
    """Linearly separable 3-class blobs as (N, 1, 2, 2) images."""
    n_per = 30
    centers = np.array([[2.0, 0.0, 0.0, -2.0],
                        [-2.0, 0.0, 0.0, 2.0],
                        [0.0, 2.0, -2.0, 0.0]])
    images, labels = [], []
    local = np.random.default_rng(7)
    for cls, center in enumerate(centers):
        pts = center + local.normal(0, 0.4, size=(n_per, 4))
        images.append(pts.reshape(n_per, 1, 2, 2))
        labels.extend([cls] * n_per)
    return ArrayDataset(np.concatenate(images), np.array(labels))
