"""Structural modules and layout-aware fan-in: the branch-graph contract.

Fan-in nodes must combine branch outputs that disagree on stacked-ness
(only some branches contain varied layers). These tests pin the layout
rules of ``fanin_add`` / ``fanin_concat`` — batch-major {2,3}/{3,4}
broadcasts, the channel-major {4,5} conv alignment — slice-by-slice
against the unstacked reference, plus gradient flow through the lifted
operands, and the stacked/unstacked parity of the new structural layers.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import functional as F, Tensor
from repro.nn import (
    Add,
    Concat,
    GlobalAvgPool2d,
    LayerNorm,
    Residual,
    SelfAttention,
)
from repro.nn.graph import (
    digital_subtrees,
    module_walk,
    weighted_layers,
    weighted_layers_digital,
)


def _t(shape, seed, requires_grad=False):
    data = np.random.default_rng(seed).normal(size=shape)
    return Tensor(data, requires_grad=requires_grad)


class TestFaninAdd:
    def test_equal_rank_is_plain_sum(self):
        a, b, c = _t((3, 4), 0), _t((3, 4), 1), _t((3, 4), 2)
        out = F.fanin_add(a, b, c)
        np.testing.assert_array_equal(out.data, a.data + b.data + c.data)

    def test_mixed_features_each_slice_matches_loop(self):
        """(S, N, F) + (N, F): slice s equals the reference per-sample sum."""
        stacked, flat = _t((5, 3, 4), 0), _t((3, 4), 1)
        out = F.fanin_add(stacked, flat)
        assert out.shape == (5, 3, 4)
        for s in range(5):
            np.testing.assert_array_equal(
                out.data[s], stacked.data[s] + flat.data
            )

    def test_mixed_tokens_each_slice_matches_loop(self):
        """(S, N, T, D) + (N, T, D) broadcasts natively (batch-major)."""
        stacked, tokens = _t((4, 2, 6, 8), 0), _t((2, 6, 8), 1)
        out = F.fanin_add(stacked, tokens)
        assert out.shape == (4, 2, 6, 8)
        for s in range(4):
            np.testing.assert_array_equal(
                out.data[s], stacked.data[s] + tokens.data
            )

    def test_mixed_conv_maps_channel_major_alignment(self):
        """(S, C, N, H, W) + (N, C, H, W) is the rank pair where naive
        trailing-aligned broadcasting would silently pair C with N; the
        channel-major transpose makes each stacked slice equal the
        unstacked sum of the reference loop."""
        s_, c, n, h, w = 3, 4, 2, 5, 5
        stacked, maps = _t((s_, c, n, h, w), 0), _t((n, c, h, w), 1)
        out = F.fanin_add(stacked, maps)
        assert out.shape == (s_, c, n, h, w)
        for s in range(s_):
            # slice s is channel-major (C, N, H, W)
            np.testing.assert_array_equal(
                out.data[s], stacked.data[s] + maps.data.transpose(1, 0, 2, 3)
            )

    def test_gradient_sums_over_sample_axis(self):
        """The unstacked branch's gradient accumulates over all S slices —
        what per-sample backprop would have summed across the loop."""
        stacked = _t((5, 3, 4), 0, requires_grad=True)
        flat = _t((3, 4), 1, requires_grad=True)
        F.fanin_add(stacked, flat).sum().backward()
        np.testing.assert_array_equal(stacked.grad, np.ones((5, 3, 4)))
        np.testing.assert_array_equal(flat.grad, np.full((3, 4), 5.0))

    def test_conv_gradient_transposes_back(self):
        stacked = _t((3, 4, 2, 5, 5), 0, requires_grad=True)
        maps = _t((2, 4, 5, 5), 1, requires_grad=True)
        F.fanin_add(stacked, maps).sum().backward()
        assert stacked.grad.shape == (3, 4, 2, 5, 5)
        assert maps.grad.shape == (2, 4, 5, 5)
        np.testing.assert_array_equal(maps.grad, np.full((2, 4, 5, 5), 3.0))

    def test_needs_two_operands(self):
        with pytest.raises(ValueError, match="at least two"):
            F.fanin_add(_t((2, 3), 0))

    def test_rank_gap_beyond_sample_axis_rejected(self):
        with pytest.raises(ValueError, match="sample axis"):
            F.fanin_add(_t((2, 2, 3, 4, 4), 0), _t((3, 4), 1))


class TestFaninConcat:
    def test_channel_equal_rank(self):
        a, b = _t((2, 3, 4, 4), 0), _t((2, 5, 4, 4), 1)
        out = F.fanin_concat([a, b], kind="channel")
        np.testing.assert_array_equal(
            out.data, np.concatenate([a.data, b.data], axis=1)
        )

    def test_channel_mixed_each_slice_matches_loop(self):
        """Stacked (S, C1, N, H, W) ++ unstacked (N, C2, H, W): every
        stacked slice, read back in batch-major, equals the unstacked
        concatenation the reference loop computes."""
        stacked, maps = _t((3, 4, 2, 5, 5), 0), _t((2, 6, 5, 5), 1)
        out = F.fanin_concat([stacked, maps], kind="channel")
        assert out.shape == (3, 10, 2, 5, 5)
        for s in range(3):
            np.testing.assert_array_equal(
                out.data[s].transpose(1, 0, 2, 3),
                np.concatenate(
                    [stacked.data[s].transpose(1, 0, 2, 3), maps.data], axis=1
                ),
            )

    def test_feature_mixed_each_slice_matches_loop(self):
        stacked, flat = _t((4, 3, 5), 0), _t((3, 2), 1)
        out = F.fanin_concat([stacked, flat], kind="feature")
        assert out.shape == (4, 3, 7)
        for s in range(4):
            np.testing.assert_array_equal(
                out.data[s], np.concatenate([stacked.data[s], flat.data], axis=-1)
            )

    def test_gradient_through_broadcast_lift(self):
        stacked = _t((4, 3, 5), 0, requires_grad=True)
        flat = _t((3, 2), 1, requires_grad=True)
        F.fanin_concat([stacked, flat], kind="feature").sum().backward()
        np.testing.assert_array_equal(stacked.grad, np.ones((4, 3, 5)))
        np.testing.assert_array_equal(flat.grad, np.full((3, 2), 4.0))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            F.fanin_concat([_t((2, 3), 0), _t((2, 3), 1)], kind="spatial")

    def test_rank_outside_kind_layouts_rejected(self):
        # rank 5 is a stacked conv layout, not a feature layout
        with pytest.raises(ValueError, match="incompatible"):
            F.fanin_concat(
                [_t((2, 3, 4, 4, 4), 0), _t((3, 4, 4, 4), 1)], kind="feature"
            )
        # rank 2/3 features are not channel layouts
        with pytest.raises(ValueError, match="incompatible"):
            F.fanin_concat([_t((2, 3), 0), _t((4, 2, 3), 1)], kind="channel")


class TestCanonicalWalk:
    """The one traversal every layer-ordering consumer shares."""

    def _model(self):
        return nn.Sequential(
            nn.Linear(4, 4, seed=0),
            Residual(nn.Linear(4, 4, seed=1), nn.Linear(4, 4, seed=2)),
            nn.Linear(4, 3, seed=3),
        )

    def test_preorder_root_first(self):
        model = self._model()
        names = [name for name, _ in module_walk(model)]
        assert names[0] == ""
        assert names == [
            "", "0", "1", "1.body", "1.shortcut", "2",
        ]

    def test_weighted_layers_follow_walk_order(self):
        names = [name for name, _ in weighted_layers(self._model())]
        assert names == ["0", "1.body", "1.shortcut", "2"]

    def test_digital_subtree_skipped_entirely(self):
        """Layers *inside* a digital container are digital too — the old
        per-leaf check only skipped the flagged module itself."""
        inner = nn.Sequential(nn.Linear(4, 4, seed=1), nn.Linear(4, 4, seed=2))
        inner.digital = True
        model = nn.Sequential(nn.Linear(4, 4, seed=0), inner)
        assert [name for name, _ in weighted_layers(model)] == ["0"]

    def test_digital_root_walks_empty(self):
        model = nn.Linear(4, 4, seed=0)
        model.digital = True
        assert list(module_walk(model)) == []
        assert len(list(module_walk(model, into_digital=True))) == 1

    def test_weighted_layers_digital_sees_inside(self):
        inner = nn.Sequential(nn.Linear(4, 4, seed=1), nn.Linear(4, 4, seed=2))
        inner.digital = True
        names = [name for name, _ in weighted_layers_digital(inner)]
        assert names == ["0", "1"]

    def test_digital_subtrees_maximal_roots_only(self):
        """Nested digital flags collapse into the outermost root, so the
        cost model charges every digital layer exactly once."""
        leaf = nn.Linear(4, 4, seed=2)
        leaf.digital = True
        outer = nn.Sequential(nn.Linear(4, 4, seed=1), leaf)
        outer.digital = True
        model = nn.Sequential(nn.Linear(4, 4, seed=0), outer)
        roots = digital_subtrees(model)
        assert [name for name, _ in roots] == ["1"]
        inside = [
            name for name, _ in weighted_layers_digital(roots[0][1])
        ]
        assert inside == ["0", "1"]


class TestBranchContainers:
    def test_add_matches_manual_sum(self):
        add = Add(nn.Identity(), nn.Identity(), nn.Identity())
        x = _t((2, 3), 0)
        np.testing.assert_array_equal(add(x).data, 3.0 * x.data)

    def test_needs_two_branches(self):
        with pytest.raises(ValueError, match="at least two"):
            Add(nn.Identity())

    def test_branches_in_registration_order(self):
        first, second = nn.Linear(3, 3, seed=0), nn.Identity()
        add = Add(first, second)
        assert list(add.branches()) == [first, second]
        assert len(add) == 2 and add[0] is first and add[1] is second

    def test_concat_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            Concat(nn.Identity(), nn.Identity(), kind="spatial")

    def test_concat_forward(self):
        cat = Concat(nn.Identity(), nn.Identity(), kind="feature")
        x = _t((2, 3), 0)
        np.testing.assert_array_equal(
            cat(x).data, np.concatenate([x.data, x.data], axis=-1)
        )

    def test_residual_default_identity_shortcut(self):
        res = Residual(nn.Identity())
        x = _t((2, 3), 0)
        np.testing.assert_array_equal(res(x).data, 2.0 * x.data)

    def test_residual_registers_body_before_shortcut(self):
        """Execution order == registration order: the canonical walk (and
        therefore the paper's layer-i indexing) must see the body's layers
        before the shortcut's."""
        res = Residual(nn.Linear(3, 4, seed=0), nn.Linear(3, 4, seed=1))
        names = [name for name, _ in weighted_layers(res)]
        assert names == ["body", "shortcut"]


class TestGlobalAvgPool2d:
    def test_unstacked(self):
        x = _t((2, 3, 4, 4), 0)
        out = GlobalAvgPool2d()(x)
        np.testing.assert_array_equal(out.data, x.data.mean(axis=(2, 3)))

    def test_stacked_returns_batch_major_paired_slices(self):
        """(S, C, N, H, W) -> (S, N, C), each slice bitwise equal to the
        unstacked pool of that sample's maps."""
        x = _t((3, 4, 2, 5, 5), 0)
        out = GlobalAvgPool2d()(x)
        assert out.shape == (3, 2, 4)
        for s in range(3):
            unstacked = GlobalAvgPool2d()(
                Tensor(x.data[s].transpose(1, 0, 2, 3))
            )
            np.testing.assert_array_equal(out.data[s], unstacked.data)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError, match="GlobalAvgPool2d"):
            GlobalAvgPool2d()(_t((2, 3), 0))


class TestLayerNorm:
    def test_normalizes_trailing_axis(self):
        x = _t((4, 6, 8), 0)
        out = LayerNorm(8)(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_stacked_slices_bitwise_paired(self):
        ln = LayerNorm(8)
        x = _t((3, 2, 6, 8), 0)
        out = ln(x)
        for s in range(3):
            np.testing.assert_array_equal(
                out.data[s], ln(Tensor(x.data[s])).data
            )

    def test_trailing_axis_mismatch_rejected(self):
        with pytest.raises(ValueError, match="LayerNorm"):
            LayerNorm(8)(_t((2, 5), 0))

    def test_affine_params_are_not_crossbar_weights(self):
        """gamma/beta are digital peripheral state: the canonical walk must
        not offer them to the injector or ``analogize``."""
        model = nn.Sequential(LayerNorm(4), nn.Linear(4, 2, seed=0))
        names = [name for name, _ in weighted_layers(model)]
        assert names == ["1"]

    def test_gradient_flows(self):
        ln = LayerNorm(5)
        x = _t((3, 5), 0, requires_grad=True)
        ln(x).sum().backward()
        assert x.grad.shape == (3, 5)
        assert np.all(np.isfinite(x.grad))


class TestSelfAttention:
    def test_output_shape_and_determinism(self):
        attn = SelfAttention(8, num_heads=2, seed=0)
        x = _t((2, 6, 8), 0)
        out = attn(x)
        assert out.shape == (2, 6, 8)
        np.testing.assert_array_equal(out.data, attn(x).data)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError, match="num_heads"):
            SelfAttention(7, num_heads=2)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError, match="SelfAttention"):
            SelfAttention(8)(_t((4, 8), 0))

    def test_stacked_input_bitwise_paired(self):
        """Stacked activations with unstacked weights: every slice equals
        the unstacked forward bitwise (trailing-axis matmul/softmax only)."""
        attn = SelfAttention(8, num_heads=2, seed=0)
        x = _t((3, 2, 6, 8), 0)
        out = attn(x)
        assert out.shape == (3, 2, 6, 8)
        for s in range(3):
            np.testing.assert_array_equal(
                out.data[s], attn(Tensor(x.data[s])).data
            )

    def test_stacked_weights_bitwise_paired(self):
        """Stacked (S, out, in) projection weights — the vectorized
        Monte-Carlo path — reproduce each per-sample forward bitwise."""
        from repro.variation import VariationInjector, LogNormalVariation

        attn = SelfAttention(8, num_heads=2, seed=0)
        inj = VariationInjector(attn, LogNormalVariation(0.4))
        x = Tensor(np.random.default_rng(5).normal(size=(2, 6, 8)))
        stacks = inj.sample_batch(3, seed=11)
        with inj.applied_stack(stacks):
            stacked_out = attn(x).data.copy()
        for s in range(3):
            slice_s = {name: stack[s] for name, stack in stacks.items()}
            with inj.applied_stack(
                {name: arr[None] for name, arr in slice_s.items()}
            ):
                per_sample = attn(x).data[0]
            np.testing.assert_array_equal(stacked_out[s], per_sample)

    def test_projections_are_weighted_layers(self):
        attn = SelfAttention(8, num_heads=2, seed=0)
        names = [name for name, _ in weighted_layers(attn)]
        assert names == ["q_proj", "k_proj", "v_proj", "out_proj"]

    def test_gradient_flows(self):
        attn = SelfAttention(4, num_heads=2, seed=0)
        x = _t((2, 3, 4), 0, requires_grad=True)
        attn(x).sum().backward()
        assert x.grad.shape == (2, 3, 4)
        assert np.any(x.grad != 0)
