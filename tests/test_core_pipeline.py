"""End-to-end CorrectNet pipeline integration (reduced scale)."""

import numpy as np
import pytest

from repro.core import CorrectNet, PipelineConfig, fast_pipeline_config
from repro.core.config import (
    CompensationConfig, EvalConfig, RLConfig, TrainConfig,
)
from repro.data import synth_mnist
from repro.models import LeNet5


@pytest.fixture(scope="module")
def pipeline_result():
    """One shared tiny pipeline run (the expensive fixture of this module)."""
    train, test = synth_mnist(train_per_class=16, test_per_class=8)
    model = LeNet5(num_classes=10, in_channels=1, input_size=16,
                   width_multiplier=1.5, seed=0)
    config = PipelineConfig(
        sigma=0.5,
        train=TrainConfig(epochs=10, batch_size=32, lr=3e-3, beta=1.0, seed=0),
        compensation=CompensationConfig(epochs=4, lr=3e-3, seed=0),
        rl=RLConfig(episodes=3, hidden_size=8, ratio_choices=(0.0, 0.5, 1.0),
                    overhead_limits=(0.05,), seed=0),
        eval=EvalConfig(n_samples=8, search_samples=3, seed=7,
                        max_candidates=2),
    )
    pipeline = CorrectNet(model, train, test, config)
    return pipeline, pipeline.run()


class TestPipeline:
    def test_original_accuracy_high(self, pipeline_result):
        # 10 epochs on 160 samples: well above chance, below saturation.
        _, result = pipeline_result
        assert result.original_accuracy > 0.6

    def test_variation_degrades(self, pipeline_result):
        _, result = pipeline_result
        assert result.degraded.mean < result.original_accuracy

    def test_correctnet_recovers(self, pipeline_result):
        """The headline claim at reduced scale: corrected accuracy beats the
        degraded accuracy by a clear margin."""
        _, result = pipeline_result
        assert result.corrected.mean > result.degraded.mean

    def test_overhead_accounting(self, pipeline_result):
        _, result = pipeline_result
        if result.compensated_layers:
            assert 0 < result.overhead < 0.2
        else:
            assert result.overhead == 0.0

    def test_summary_row_format(self, pipeline_result):
        _, result = pipeline_result
        row = result.summary_row()
        assert len(row) == 5
        assert row[4] == len(result.compensated_layers)

    def test_lambda_from_sigma(self, pipeline_result):
        pipeline, _ = pipeline_result
        from repro.lipschitz import lambda_bound
        assert pipeline.lam == pytest.approx(lambda_bound(0.5))

    def test_candidates_are_prefix(self, pipeline_result):
        _, result = pipeline_result
        assert result.candidates == sorted(result.candidates)
        if result.candidates:
            assert result.candidates[0] == 0

    def test_search_results_per_limit(self, pipeline_result):
        pipeline, result = pipeline_result
        if result.candidates:
            assert set(result.search_results) == {0.05}


class TestFastConfig:
    def test_fast_config_shape(self):
        config = fast_pipeline_config(sigma=0.3, seed=5)
        assert config.sigma == 0.3
        assert config.eval.n_samples < 250  # reduced vs paper protocol

    def test_pipeline_model_is_distinct(self, pipeline_result):
        pipeline, result = pipeline_result
        assert result.model is not pipeline.model
