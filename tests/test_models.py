"""Model zoo: shapes, layer counts, registry dispatch."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import ArrayDataset
from repro.models import LeNet5, MLP, VGG, available_models, build_model
from repro.variation import weighted_layers


class TestLeNet5:
    def test_forward_shape(self):
        model = LeNet5(num_classes=10, in_channels=1, input_size=16, seed=0)
        x = Tensor(np.zeros((4, 1, 16, 16)))
        assert model(x).shape == (4, 10)

    def test_five_weighted_layers(self):
        model = LeNet5(seed=0)
        assert len(weighted_layers(model)) == 5

    def test_width_multiplier_scales_params(self):
        small = LeNet5(width_multiplier=1.0, seed=0).num_parameters()
        large = LeNet5(width_multiplier=2.0, seed=0).num_parameters()
        assert large > 2 * small

    def test_rgb_input(self):
        model = LeNet5(num_classes=10, in_channels=3, input_size=16, seed=0)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 10)

    def test_too_small_input_raises(self):
        with pytest.raises(ValueError):
            LeNet5(input_size=6)


class TestVGG:
    def test_vgg16_depth(self):
        model = VGG("vgg16", num_classes=10, in_channels=3, input_size=16,
                    width=0.1, seed=0)
        # 13 convs + 2 linears
        assert len(weighted_layers(model)) == 15

    def test_vgg11_depth(self):
        model = VGG("vgg11", num_classes=10, in_channels=3, input_size=16,
                    width=0.1, seed=0)
        assert len(weighted_layers(model)) == 10

    def test_forward_shape(self):
        model = VGG("vgg16", num_classes=7, in_channels=3, input_size=16,
                    width=0.1, seed=0)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 7)

    def test_small_input_skips_extra_pools(self):
        # 8x8 input supports 3 pools; vgg16 config has 5 — must still build.
        model = VGG("vgg16", num_classes=4, in_channels=1, input_size=8,
                    width=0.1, seed=0)
        assert model(Tensor(np.zeros((1, 1, 8, 8)))).shape == (1, 4)

    def test_width_scales_channels(self):
        thin = VGG("vgg16", width=0.05, input_size=16, seed=0).num_parameters()
        wide = VGG("vgg16", width=0.2, input_size=16, seed=0).num_parameters()
        assert wide > thin

    def test_custom_config_list(self):
        model = VGG([4, "M", 8], num_classes=3, in_channels=1, input_size=8,
                    width=1.0, seed=0)
        assert model(Tensor(np.zeros((1, 1, 8, 8)))).shape == (1, 3)


class TestMLP:
    def test_flatten_input(self):
        model = MLP(16, [8], 4, seed=0)
        assert model(Tensor(np.zeros((2, 1, 4, 4)))).shape == (2, 4)

    def test_depth_matches_hidden(self):
        model = MLP(4, [8, 8, 8], 2, flatten_input=False, seed=0)
        assert len(weighted_layers(model)) == 4


class TestRegistry:
    def _ds(self, channels=1, classes=10):
        return ArrayDataset(np.zeros((classes, channels, 16, 16)),
                            np.arange(classes))

    def test_available(self):
        assert "lenet5" in available_models()
        assert "vgg16" in available_models()

    @pytest.mark.parametrize("name", ["lenet5", "vgg16", "vgg11", "mlp"])
    def test_build_and_forward(self, name):
        ds = self._ds(channels=3, classes=10)
        model = build_model(name, ds, width=0.3, seed=0)
        out = model(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_class_count_adapts(self):
        ds = self._ds(classes=7)
        model = build_model("lenet5", ds, seed=0)
        assert model(Tensor(np.zeros((1, 1, 16, 16)))).shape == (1, 7)

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            build_model("resnet", self._ds())

    def test_nonsquare_raises(self):
        ds = ArrayDataset(np.zeros((2, 1, 8, 16)), np.arange(2))
        with pytest.raises(ValueError):
            build_model("lenet5", ds)

    def test_deterministic_by_seed(self):
        ds = self._ds()
        a = build_model("lenet5", ds, seed=3)
        b = build_model("lenet5", ds, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
