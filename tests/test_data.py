"""Datasets, loaders, splits and augmentations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    ArrayDataset, DataLoader, add_noise, random_flip, random_shift,
    synth_cifar10, synth_cifar100, synth_mnist, train_test_split,
)


class TestArrayDataset:
    def test_shapes_validated(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(3))

    def test_indexing(self):
        ds = ArrayDataset(np.ones((3, 1, 2, 2)), np.array([0, 1, 2]))
        image, label = ds[1]
        assert image.shape == (1, 2, 2)
        assert label == 1
        assert len(ds) == 3

    def test_num_classes_and_image_shape(self):
        ds = ArrayDataset(np.ones((4, 3, 5, 5)), np.array([0, 0, 2, 1]))
        assert ds.num_classes == 3
        assert ds.image_shape == (3, 5, 5)

    def test_normalized_stats(self):
        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.normal(5, 3, size=(50, 2, 4, 4)),
                          np.zeros(50, dtype=int))
        norm = ds.normalized()
        assert abs(norm.images.mean()) < 1e-9
        assert norm.images.std() == pytest.approx(1.0, abs=0.01)


class TestSplit:
    def test_partition_complete_and_disjoint(self):
        ds = ArrayDataset(np.arange(40).reshape(10, 1, 2, 2).astype(float),
                          np.arange(10) % 3)
        train, test = train_test_split(ds, test_fraction=0.3, seed=1)
        assert len(train) + len(test) == 10
        train_set = {tuple(x.ravel()) for x in train.images}
        test_set = {tuple(x.ravel()) for x in test.images}
        assert not train_set & test_set

    def test_deterministic_by_seed(self):
        ds = ArrayDataset(np.random.default_rng(0).normal(size=(20, 1, 2, 2)),
                          np.zeros(20, dtype=int))
        a1, _ = train_test_split(ds, seed=7)
        a2, _ = train_test_split(ds, seed=7)
        np.testing.assert_allclose(a1.images, a2.images)

    def test_invalid_fraction(self):
        ds = ArrayDataset(np.zeros((4, 1, 1, 1)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=0.0)


class TestDataLoader:
    def _ds(self, n=10):
        return ArrayDataset(np.arange(n * 4).reshape(n, 1, 2, 2).astype(float),
                            np.arange(n) % 2)

    def test_covers_all_samples(self):
        loader = DataLoader(self._ds(), batch_size=3, shuffle=True, seed=0)
        seen = sum(len(labels) for _, labels in loader)
        assert seen == 10

    def test_len_with_and_without_drop_last(self):
        assert len(DataLoader(self._ds(), batch_size=3)) == 4
        assert len(DataLoader(self._ds(), batch_size=3, drop_last=True)) == 3

    def test_drop_last_batches_full(self):
        loader = DataLoader(self._ds(), batch_size=3, drop_last=True, seed=0)
        assert all(len(labels) == 3 for _, labels in loader)

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(self._ds(), batch_size=4, shuffle=False)
        first_batch = next(iter(loader))[0]
        np.testing.assert_allclose(first_batch[0].ravel(), [0, 1, 2, 3])

    def test_epochs_differ_when_shuffled(self):
        loader = DataLoader(self._ds(), batch_size=10, shuffle=True, seed=0)
        e1 = next(iter(loader))[1].copy()
        e2 = next(iter(loader))[1].copy()
        assert not np.array_equal(e1, e2)  # reshuffled across epochs

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._ds(), batch_size=0)


class TestSyntheticDatasets:
    @pytest.mark.parametrize("factory,channels,classes", [
        (synth_mnist, 1, 10),
        (synth_cifar10, 3, 10),
    ])
    def test_shapes_and_classes(self, factory, channels, classes):
        train, test = factory(train_per_class=4, test_per_class=2)
        assert train.image_shape == (channels, 16, 16)
        assert train.num_classes == classes
        assert len(train) == 4 * classes
        assert len(test) == 2 * classes

    def test_cifar100_class_count_configurable(self):
        train, _ = synth_cifar100(num_classes=20, train_per_class=2,
                                  test_per_class=1)
        assert train.num_classes == 20

    def test_deterministic_generation(self):
        a, _ = synth_mnist(train_per_class=2, test_per_class=1, seed=5)
        b, _ = synth_mnist(train_per_class=2, test_per_class=1, seed=5)
        np.testing.assert_allclose(a.images, b.images)

    def test_balanced_labels(self):
        train, _ = synth_cifar10(train_per_class=3, test_per_class=1)
        counts = np.bincount(train.labels)
        assert (counts == 3).all()

    @pytest.mark.parametrize("factory,threshold", [
        # mnist glyphs are shift-augmented, which hurts raw-pixel NCM (conv
        # nets are fine); the low-frequency cifar classes survive shifts.
        (synth_mnist, 0.35),
        (synth_cifar10, 0.6),
    ])
    def test_classes_separable_by_nearest_mean(self, factory, threshold):
        """Nearest-class-mean must beat chance by a wide margin — the
        datasets exist to be learnable."""
        train, test = factory(train_per_class=16, test_per_class=8)
        means = np.stack([
            train.images[train.labels == c].mean(axis=0).ravel()
            for c in range(10)
        ])
        x = test.images.reshape(len(test), -1)
        pred = ((x[:, None, :] - means[None]) ** 2).sum(-1).argmin(1)
        assert (pred == test.labels).mean() > threshold


class TestAugmentations:
    def test_shift_zero_is_identity(self):
        img = np.random.default_rng(0).normal(size=(1, 4, 4))
        np.testing.assert_allclose(
            random_shift(img, 0, np.random.default_rng(0)), img
        )

    def test_shift_preserves_shape(self):
        img = np.ones((3, 8, 8))
        out = random_shift(img, 2, np.random.default_rng(1))
        assert out.shape == img.shape

    def test_flip_probability_one(self):
        img = np.arange(8.0).reshape(1, 2, 4)
        out = random_flip(img, np.random.default_rng(0), p=1.0)
        np.testing.assert_allclose(out, img[..., ::-1])

    def test_flip_probability_zero(self):
        img = np.arange(8.0).reshape(1, 2, 4)
        np.testing.assert_allclose(
            random_flip(img, np.random.default_rng(0), p=0.0), img
        )

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.01, 1.0))
    def test_noise_scale_controls_std(self, scale):
        img = np.zeros((1, 32, 32))
        out = add_noise(img, scale, np.random.default_rng(0))
        assert out.std() == pytest.approx(scale, rel=0.2)
