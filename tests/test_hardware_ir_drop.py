"""IR-drop (wire resistance) modeling in the crossbar."""

import numpy as np
import pytest

from repro.hardware import Crossbar


class TestIRDrop:
    def test_zero_resistance_exact(self):
        w = np.random.default_rng(0).normal(size=(6, 8))
        xbar = Crossbar(w, wire_resistance=0.0)
        x = np.random.default_rng(1).normal(size=(3, 8))
        np.testing.assert_allclose(xbar.mvm(x), x @ w.T, atol=1e-10)

    def test_resistance_attenuates_output(self):
        w = np.ones((4, 4))
        x = np.ones((1, 4))
        ideal = Crossbar(w, wire_resistance=0.0).mvm(x)
        dropped = Crossbar(w, wire_resistance=200.0).mvm(x)
        assert np.abs(dropped).sum() < np.abs(ideal).sum()

    def test_attenuation_grows_with_distance(self):
        w = np.ones((8, 8))
        xbar = Crossbar(w, wire_resistance=500.0)
        att = xbar._ir_drop_attenuation()
        # Farther cells (larger i+j) attenuate more.
        assert att[0, 0] > att[7, 7]
        assert (att > 0).all() and (att <= 1).all()

    def test_attenuation_monotone_along_row_and_column(self):
        w = np.ones((5, 5))
        att = Crossbar(w, wire_resistance=300.0)._ir_drop_attenuation()
        for i in range(5):
            assert all(np.diff(att[i]) <= 1e-15)  # along the row
            assert all(np.diff(att[:, i]) <= 1e-15)  # along the column

    def test_more_resistance_more_error(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(8, 8))
        x = rng.normal(size=(4, 8))
        exact = x @ w.T
        errs = []
        for r in (0.0, 100.0, 1000.0):
            out = Crossbar(w, wire_resistance=r).mvm(x)
            errs.append(np.abs(out - exact).max())
        assert errs[0] == pytest.approx(0.0, abs=1e-10)
        assert errs[2] > errs[1] > errs[0]

    def test_negative_resistance_raises(self):
        with pytest.raises(ValueError):
            Crossbar(np.ones((2, 2)), wire_resistance=-1.0)

    def test_small_array_suffers_less(self):
        """Tiling mitigates IR drop: a small tile's worst-case path is
        shorter, so its relative error is lower — the architectural reason
        crossbars are bounded in practice."""
        rng = np.random.default_rng(3)
        w = rng.normal(size=(32, 32))
        x = rng.normal(size=(2, 32))
        exact = x @ w.T
        big = Crossbar(w, wire_resistance=200.0).mvm(x)
        from repro.hardware import TiledCrossbarArray
        # 8x8 tiles with the same wire resistance per segment
        tiled = TiledCrossbarArray(w, 8, 8)
        for row in tiled.tiles:
            for tile in row:
                tile.wire_resistance = 200.0
        small = tiled.mvm(x)
        big_err = np.abs(big - exact).mean()
        small_err = np.abs(small - exact).mean()
        assert small_err < big_err
