"""Initialisation schemes: statistical and algebraic properties."""

import numpy as np
import pytest

from repro.nn import init


class TestFans:
    def test_linear_shape(self):
        assert init._fan_in_out((4, 7)) == (7, 4)

    def test_conv_shape(self):
        assert init._fan_in_out((8, 3, 5, 5)) == (75, 200)

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            init._fan_in_out((3,))


class TestKaiming:
    def test_std_matches_fan_in(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 512), rng)
        expected = np.sqrt(2.0 / 512)
        assert w.std() == pytest.approx(expected, rel=0.05)


class TestXavier:
    def test_bound_respected(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((64, 64), rng)
        bound = np.sqrt(6.0 / 128)
        assert np.abs(w).max() <= bound


class TestOrthogonal:
    def test_rows_orthonormal_wide(self):
        rng = np.random.default_rng(0)
        w = init.orthogonal((4, 10), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)

    def test_cols_orthonormal_tall(self):
        rng = np.random.default_rng(0)
        w = init.orthogonal((10, 4), rng)
        np.testing.assert_allclose(w.T @ w, np.eye(4), atol=1e-10)

    def test_gain_scales_singular_values(self):
        rng = np.random.default_rng(0)
        w = init.orthogonal((5, 5), rng, gain=0.3)
        s = np.linalg.svd(w, compute_uv=False)
        np.testing.assert_allclose(s, np.full(5, 0.3), atol=1e-10)

    def test_conv_shape_flattening(self):
        rng = np.random.default_rng(0)
        w = init.orthogonal((6, 2, 3, 3), rng)
        flat = w.reshape(6, -1)
        np.testing.assert_allclose(flat @ flat.T, np.eye(6), atol=1e-10)


class TestZeros:
    def test_zeros(self):
        assert (init.zeros((3, 3)) == 0).all()
