"""Statistical tests for the sequential (adaptive) evaluation layer.

Everything here is seeded and deterministic: coverage tests draw synthetic
Bernoulli accuracy streams with known ``p`` from fixed seeds and assert on
the exact coverage counts those seeds produce (pinned to a band well below
the nominal level, so the assertions are robust to which seeds were
chosen while still catching a broken estimator); stopping-rule tests
assert structural properties — monotonicity in the tolerance, bound
enforcement, allocator determinism — that hold for every stream.
"""

import numpy as np
import pytest

from repro.evaluation import MonteCarloEvaluator
from repro.evaluation.sequential import (
    allocate_draws,
    CI_METHODS,
    clt_interval,
    FixedSamples,
    half_width,
    HalfWidthRule,
    interval,
    wilson_interval,
    z_score,
)
from repro.variation.models import LogNormalVariation


def bernoulli_stream(p, n, seed):
    rng = np.random.default_rng(seed)
    return (rng.random(n) < p).astype(float).tolist()


# ---------------------------------------------------------------------------
# Interval estimators
# ---------------------------------------------------------------------------
class TestIntervals:
    def test_z_score_matches_known_quantiles(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_score(0.99) == pytest.approx(2.575829, abs=1e-5)

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 1.5])
    def test_z_score_rejects_bad_confidence(self, confidence):
        with pytest.raises(ValueError, match="confidence"):
            z_score(confidence)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="zero draws"):
            interval([])

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown CI method"):
            interval([0.5, 0.6], method="bogus")

    def test_single_draw_clt_is_degenerate(self):
        assert clt_interval([0.7]) == (0.7, 0.7)

    def test_clt_interval_centered_and_ordered(self):
        draws = bernoulli_stream(0.4, 50, seed=3)
        lo, hi = clt_interval(draws)
        mean = sum(draws) / len(draws)
        assert lo < mean < hi
        assert hi - lo == pytest.approx(2 * half_width(draws))

    def test_clt_width_shrinks_with_n(self):
        draws = bernoulli_stream(0.5, 400, seed=5)
        assert half_width(draws[:400]) < half_width(draws[:100]) < half_width(draws[:25])

    def test_wilson_stays_inside_unit_interval(self):
        for draws in ([0.0] * 10, [1.0] * 10, bernoulli_stream(0.5, 20, seed=1)):
            lo, hi = wilson_interval(draws)
            assert 0.0 <= lo <= hi <= 1.0

    def test_wilson_never_collapses_at_boundary(self):
        # A saturated configuration (all draws identical at 0 or 1) still
        # has nonzero Wilson width — it cannot stop with trivially few
        # draws — while the CLT interval degenerates to zero width there.
        assert half_width([1.0] * 5, method="wilson") > 0.0
        assert half_width([1.0] * 5, method="clt") == 0.0

    def test_higher_confidence_is_wider(self):
        draws = bernoulli_stream(0.6, 40, seed=7)
        for method in CI_METHODS:
            assert half_width(draws, 0.99, method) > half_width(draws, 0.9, method)

    @pytest.mark.parametrize("p,n", [(0.3, 30), (0.9, 25)])
    def test_coverage_on_bernoulli_streams(self, p, n):
        """Both estimators cover the true mean near the nominal 95% level.

        300 seeded streams; the exact counts for these seeds are ~93-96%.
        The lower bound (85%) catches estimators that are anti-conservative
        (e.g. a dropped sqrt(n) or a z/2 slip), the upper bound (100%)
        is structural.
        """
        n_seeds = 300
        for method in CI_METHODS:
            covered = 0
            for seed in range(n_seeds):
                lo, hi = interval(bernoulli_stream(p, n, seed), method=method)
                covered += lo <= p <= hi
            assert 0.85 * n_seeds <= covered <= n_seeds, (method, covered)

    def test_wilson_wider_than_clt_for_bernoulli_extremes(self):
        # Near-saturated streams: Wilson's boundary behaviour makes it the
        # conservative choice.
        draws = [1.0] * 18 + [0.0] * 2
        assert half_width(draws, method="wilson") >= half_width(draws, method="clt") * 0.9


# ---------------------------------------------------------------------------
# Stopping rules
# ---------------------------------------------------------------------------
class TestStoppingRules:
    def test_fixed_samples_never_stops(self):
        rule = FixedSamples()
        draws = bernoulli_stream(0.5, 500, seed=0)
        assert not any(rule.satisfied(draws[:k]) for k in range(1, 501))

    def test_never_fires_below_two_draws(self):
        # Even a zero-width stream cannot stop on one draw.
        rule = HalfWidthRule(tolerance=0.5, min_samples=1)
        assert not rule.satisfied([0.7])
        assert rule.satisfied([0.7, 0.7])

    def test_min_samples_enforced(self):
        rule = HalfWidthRule(tolerance=1.0, min_samples=10)
        constant = [0.5] * 20
        for k in range(1, 10):
            assert not rule.satisfied(constant[:k])
        assert rule.satisfied(constant[:10])

    def test_tighter_tolerance_needs_at_least_as_many_draws(self):
        # A continuous accuracy stream whose interval tightens gradually
        # (a Bernoulli stream can open with identical draws, collapsing
        # every tolerance onto the same trivial stop).
        rng = np.random.default_rng(11)
        draws = np.clip(0.6 + 0.15 * rng.standard_normal(4000), 0, 1).tolist()

        def draws_to_stop(tolerance):
            rule = HalfWidthRule(tolerance=tolerance)
            for k in range(1, len(draws) + 1):
                if rule.satisfied(draws[:k]):
                    return k
            return len(draws) + 1  # never stopped

        stops = [draws_to_stop(t) for t in (0.2, 0.1, 0.05, 0.02, 0.01)]
        assert stops == sorted(stops)
        assert stops[0] < stops[-1]  # the range actually spreads

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(tolerance=0.0), "tolerance"),
            (dict(tolerance=-0.1), "tolerance"),
            (dict(tolerance=0.1, confidence=1.0), "confidence"),
            (dict(tolerance=0.1, method="bogus"), "CI method"),
            (dict(tolerance=0.1, min_samples=0), "min_samples"),
        ],
    )
    def test_half_width_rule_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            HalfWidthRule(**kwargs)

    def test_base_rule_decide_is_abstract(self):
        class Incomplete(HalfWidthRule.__mro__[1]):  # StoppingRule
            min_samples = 1

        with pytest.raises(NotImplementedError):
            Incomplete().satisfied([0.5, 0.5])


# ---------------------------------------------------------------------------
# Sweep-level draw allocation
# ---------------------------------------------------------------------------
class FakePoint:
    """A SequentialPoint over a pre-baked accuracy stream."""

    def __init__(self, stream, chunk=4, rule=None):
        self.stream = list(stream)
        self.chunk = chunk
        self.rule = rule
        self.accuracies = []
        self.chunks_run = 0
        self._stopped = False

    @property
    def done(self):
        return self._stopped or len(self.accuracies) >= len(self.stream)

    def run_chunk(self):
        start = len(self.accuracies)
        stop = min(start + self.chunk, len(self.stream))
        self.accuracies.extend(self.stream[start:stop])
        self.chunks_run += 1
        if self.rule is not None and self.rule.satisfied(self.accuracies):
            self._stopped = True
        return stop - start


class TestAllocateDraws:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            allocate_draws([], -1, lambda accs: 0.0)

    def test_priming_ignores_budget(self):
        # Budget 0, but every point still receives its two priming draws —
        # otherwise a point with no draws could never compete for budget.
        points = [FakePoint(bernoulli_stream(0.5, 20, s), chunk=2) for s in range(3)]
        spent = allocate_draws(points, 0, lambda accs: half_width(accs))
        assert spent == 6
        assert all(len(p.accuracies) == 2 for p in points)

    def test_budget_is_soft_by_at_most_one_chunk(self):
        points = [FakePoint(bernoulli_stream(0.5, 100, s), chunk=8) for s in range(2)]
        spent = allocate_draws(points, 20, lambda accs: half_width(accs))
        assert 20 <= spent <= 20 + 8

    def test_widest_point_drains_the_budget(self):
        # A saturated (zero-spread) point competes with a noisy one: after
        # priming, every budget chunk must go to the noisy point.
        flat = FakePoint([0.8] * 50, chunk=5)
        noisy = FakePoint(bernoulli_stream(0.5, 50, seed=2), chunk=5)
        allocate_draws([flat, noisy], 30, lambda accs: half_width(accs))
        assert len(flat.accuracies) == 5  # priming chunk only
        assert len(noisy.accuracies) > len(flat.accuracies)

    def test_ties_break_to_lowest_index_deterministically(self):
        streams = [[0.5, 1.0] * 25] * 3  # identical streams -> identical widths
        runs = []
        for _ in range(2):
            points = [FakePoint(s, chunk=2) for s in streams]
            allocate_draws(points, 10, lambda accs: half_width(accs))
            runs.append([len(p.accuracies) for p in points])
        assert runs[0] == runs[1]
        # Lowest index wins every tie, so counts are non-increasing.
        assert runs[0] == sorted(runs[0], reverse=True)

    def test_stopped_points_get_no_more_chunks(self):
        rule = HalfWidthRule(tolerance=0.5, min_samples=2)
        point = FakePoint([0.7] * 40, chunk=4, rule=rule)
        allocate_draws([point], 40, lambda accs: half_width(accs))
        assert point.done and len(point.accuracies) == 4

    def test_exhausted_points_end_the_loop(self):
        points = [FakePoint(bernoulli_stream(0.5, 8, s), chunk=4) for s in range(2)]
        spent = allocate_draws(points, 10_000, lambda accs: half_width(accs))
        assert spent == 16  # every stream fully drained, then no actives


# ---------------------------------------------------------------------------
# Evaluator integration: tolerance / bounds / grid behaviour
# ---------------------------------------------------------------------------
class TestAdaptiveEvaluator:
    def test_loose_tolerance_stops_early(self, lenet, tiny_test):
        ev = MonteCarloEvaluator(tiny_test, n_samples=40, seed=9, vectorized=True,
                                 sample_chunk=4)
        result = ev.evaluate(lenet, LogNormalVariation(0.3), tolerance=0.2)
        assert result.stopped_early
        assert result.n_samples_used < 40
        assert result.ci_half_width <= 0.2
        assert result.ci_low <= result.mean <= result.ci_high

    def test_unreachable_tolerance_runs_to_cap(self, lenet, tiny_test):
        ev = MonteCarloEvaluator(tiny_test, n_samples=12, seed=9, vectorized=True,
                                 sample_chunk=4)
        result = ev.evaluate(lenet, LogNormalVariation(0.5), tolerance=1e-9)
        assert result.n_samples_used == 12  # max bound enforced
        assert not result.stopped_early

    def test_min_samples_floor(self, lenet, tiny_test):
        ev = MonteCarloEvaluator(tiny_test, n_samples=40, seed=9, vectorized=True,
                                 sample_chunk=2)
        floored = ev.evaluate(lenet, LogNormalVariation(0.3),
                              tolerance=10.0, min_samples=10)
        assert floored.n_samples_used >= 10

    def test_tolerance_monotone_in_draws(self, lenet, tiny_test):
        ev = MonteCarloEvaluator(tiny_test, n_samples=64, seed=9, vectorized=True,
                                 sample_chunk=4)
        used = [
            ev.evaluate(lenet, LogNormalVariation(0.4), tolerance=t).n_samples_used
            for t in (0.2, 0.05, 0.02)
        ]
        assert used == sorted(used)

    def test_constructor_validation(self, tiny_test):
        with pytest.raises(ValueError, match="tolerance"):
            MonteCarloEvaluator(tiny_test, tolerance=-0.1)
        with pytest.raises(ValueError, match="min_samples"):
            MonteCarloEvaluator(tiny_test, min_samples=0)
        with pytest.raises(ValueError, match="ci_confidence"):
            MonteCarloEvaluator(tiny_test, ci_confidence=2.0)
        with pytest.raises(ValueError, match="CI method"):
            MonteCarloEvaluator(tiny_test, ci_method="bogus")

    def test_deterministic_variation_not_marked_early(self, lenet, tiny_test):
        ev = MonteCarloEvaluator(tiny_test, n_samples=20, seed=9, tolerance=0.1)
        result = ev.evaluate(lenet, "none")
        assert result.n_samples_used == 1
        assert not result.stopped_early

    def test_grid_concentrates_draws_on_wide_points(self, lenet, tiny_test):
        ev = MonteCarloEvaluator(tiny_test, n_samples=48, seed=9, vectorized=True,
                                 sample_chunk=4)
        results = ev.sweep_sigma(lenet, LogNormalVariation(0.3),
                                 [0.05, 0.8], tolerance=0.04)
        # sigma=0.05 is near-saturated (tight interval quickly); sigma=0.8
        # is noisy and keeps drawing.
        assert results[0].n_samples_used < results[1].n_samples_used

    def test_grid_budget_only_mode(self, lenet, tiny_test):
        ev = MonteCarloEvaluator(tiny_test, n_samples=16, seed=9, vectorized=True,
                                 sample_chunk=4)
        results = ev.sweep_sigma(lenet, LogNormalVariation(0.3), [0.2, 0.6],
                                 draw_budget=16)
        total = sum(r.n_samples_used for r in results)
        assert total <= 16 + 4  # soft budget: at most one extra chunk
        assert all(r.n_samples_used >= 2 for r in results)  # priming floor

    def test_grid_results_are_paired_prefixes(self, lenet, tiny_test):
        ev = MonteCarloEvaluator(tiny_test, n_samples=32, seed=9, vectorized=True,
                                 sample_chunk=4)
        sigmas = [0.1, 0.4, 0.7]
        adaptive = ev.sweep_sigma(lenet, LogNormalVariation(0.3), sigmas,
                                  tolerance=0.05)
        fixed = ev.sweep_sigma(lenet, LogNormalVariation(0.3), sigmas)
        for a, f in zip(adaptive, fixed):
            assert a.accuracies == f.accuracies[: a.n_samples_used]

    def test_cross_backend_stop_point_invariance(self, lenet, tiny_test):
        kwargs = dict(n_samples=32, seed=9, sample_chunk=4)
        results = [
            MonteCarloEvaluator(tiny_test, vectorized=True, **kwargs),
            MonteCarloEvaluator(tiny_test, vectorized=False, **kwargs),
            MonteCarloEvaluator(tiny_test, vectorized=False, n_workers=2, **kwargs),
        ]
        outs = [
            ev.evaluate(lenet, LogNormalVariation(0.35), tolerance=0.06)
            for ev in results
        ]
        assert len({o.n_samples_used for o in outs}) == 1
        assert outs[0].accuracies == outs[1].accuracies == outs[2].accuracies
