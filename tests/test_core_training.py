"""The shared Trainer: learning, regularization, noise injection, warmup."""

import numpy as np
import pytest

from repro.core import Trainer
from repro.evaluation import accuracy
from repro.lipschitz import OrthogonalityRegularizer, layer_spectral_norms
from repro.models import MLP
from repro.optim import Adam, StepSchedule
from repro.variation import LogNormalVariation, VariationInjector


def _fresh_mlp(seed=0):
    return MLP(4, [16], 3, flatten_input=True, seed=seed)


class TestBasicTraining:
    def test_learns_blobs(self, blob_dataset):
        model = _fresh_mlp()
        trainer = Trainer(model, Adam(list(model.parameters()), lr=0.01),
                          seed=0)
        history = trainer.fit(blob_dataset, epochs=25, batch_size=16,
                              val_data=blob_dataset)
        assert history.final_val_accuracy > 0.9

    def test_loss_decreases(self, blob_dataset):
        model = _fresh_mlp()
        trainer = Trainer(model, Adam(list(model.parameters()), lr=0.01),
                          seed=0)
        history = trainer.fit(blob_dataset, epochs=10, batch_size=16)
        assert history.loss[-1] < history.loss[0]

    def test_zero_epochs_noop(self, blob_dataset):
        model = _fresh_mlp()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        Trainer(model, Adam(list(model.parameters()), lr=0.01)).fit(
            blob_dataset, epochs=0
        )
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_negative_epochs_raises(self, blob_dataset):
        model = _fresh_mlp()
        trainer = Trainer(model, Adam(list(model.parameters()), lr=0.01))
        with pytest.raises(ValueError):
            trainer.fit(blob_dataset, epochs=-1)

    def test_callback_invoked(self, blob_dataset):
        model = _fresh_mlp()
        calls = []
        Trainer(model, Adam(list(model.parameters()), lr=0.01)).fit(
            blob_dataset, epochs=3, callback=lambda e, h: calls.append(e)
        )
        assert calls == [0, 1, 2]

    def test_scheduler_applied(self, blob_dataset):
        model = _fresh_mlp()
        opt = Adam(list(model.parameters()), lr=0.01)
        Trainer(model, opt).fit(
            blob_dataset, epochs=4,
            scheduler=StepSchedule(opt, step_size=1, gamma=0.5),
        )
        assert opt.lr == pytest.approx(0.01 * 0.5**4)


class TestRegularizedTraining:
    def test_regularizer_reduces_spectral_norms(self, blob_dataset):
        plain = _fresh_mlp()
        Trainer(plain, Adam(list(plain.parameters()), lr=0.01), seed=0).fit(
            blob_dataset, epochs=20, batch_size=16
        )
        regd = _fresh_mlp()
        reg = OrthogonalityRegularizer(0.5, beta=1.0)
        Trainer(regd, Adam(list(regd.parameters()), lr=0.01),
                regularizer=reg, seed=0).fit(blob_dataset, epochs=20,
                                             batch_size=16)
        plain_max = max(layer_spectral_norms(plain).values())
        regd_max = max(layer_spectral_norms(regd).values())
        assert regd_max < plain_max

    def test_history_records_regularizer(self, blob_dataset):
        model = _fresh_mlp()
        reg = OrthogonalityRegularizer(0.5, beta=0.1)
        history = Trainer(
            model, Adam(list(model.parameters()), lr=0.01), regularizer=reg
        ).fit(blob_dataset, epochs=3)
        assert len(history.regularizer) == 3
        assert all(v > 0 for v in history.regularizer)

    def test_warmup_delays_penalty(self, blob_dataset):
        model = _fresh_mlp()
        reg = OrthogonalityRegularizer(0.5, beta=1.0)
        history = Trainer(
            model, Adam(list(model.parameters()), lr=0.01),
            regularizer=reg, regularizer_warmup_epochs=2,
        ).fit(blob_dataset, epochs=4)
        assert history.regularizer[0] == 0.0  # epoch 0: scale 0
        assert history.regularizer[-1] > 0.0


class TestNoiseAwareTraining:
    def test_weights_restored_each_batch(self, blob_dataset):
        """After fit, params hold the optimizer's updates, not a stale
        perturbation: re-running forward twice is deterministic."""
        from repro.autograd import Tensor
        model = _fresh_mlp()
        trainer = Trainer(
            model, Adam(list(model.parameters()), lr=0.01),
            variation=LogNormalVariation(0.4), seed=0,
        )
        trainer.fit(blob_dataset, epochs=2, batch_size=16)
        x = Tensor(blob_dataset.images[:4])
        model.eval()
        np.testing.assert_array_equal(model(x).data, model(x).data)

    def test_noise_aware_still_learns(self, blob_dataset):
        model = _fresh_mlp()
        trainer = Trainer(
            model, Adam(list(model.parameters()), lr=0.01),
            variation=LogNormalVariation(0.3), seed=0,
        )
        trainer.fit(blob_dataset, epochs=25, batch_size=16)
        assert accuracy(model, blob_dataset) > 0.8


class TestMultiDrawVariationTraining:
    """Trainer.variation_samples on a model with *trainable* varied
    weights must use the sequential fallback (a stacked parameter cannot
    take an optimizer step) and still converge sanely."""

    def test_noise_aware_multi_draw_runs(self, blob_dataset):
        model = _fresh_mlp(seed=3)
        trainer = Trainer(
            model,
            Adam(list(model.parameters()), lr=5e-3),
            variation=LogNormalVariation(0.2),
            variation_samples=3,
            seed=0,
        )
        injector_probe = trainer._stacked_variation_ok(
            VariationInjector(model, LogNormalVariation(0.2))
        )
        assert not injector_probe  # trainable weights: stacked path illegal
        history = trainer.fit(blob_dataset, epochs=2, batch_size=16)
        assert len(history.loss) == 2
        assert np.isfinite(history.loss).all()
        for p in model.parameters():
            assert p.data.ndim <= 2  # never left in stacked shape

    def test_invalid_variation_samples_raise(self):
        model = _fresh_mlp()
        with pytest.raises(ValueError):
            Trainer(model, Adam(list(model.parameters())),
                    variation=LogNormalVariation(0.2), variation_samples=-1)
