"""Error-propagation tracer: per-layer deviation capture (paper Fig. 4)."""

import numpy as np
import pytest

from repro.evaluation import ErrorPropagationTracer
from repro.variation import (
    LogNormalVariation,
    NoVariation,
    weighted_layers,
)


@pytest.fixture()
def tracer(mlp):
    return ErrorPropagationTracer(mlp)


class TestTrace:
    def test_one_deviation_per_weighted_layer(self, tracer, mlp, blob_dataset):
        devs = tracer.trace(blob_dataset.images, LogNormalVariation(0.3), seed=0)
        expected = weighted_layers(mlp)
        assert len(devs) == len(expected)
        assert [d.index for d in devs] == list(range(len(expected)))
        assert [d.name for d in devs] == [name for name, _ in expected]

    def test_no_variation_traces_zero_error(self, tracer, blob_dataset):
        devs = tracer.trace(blob_dataset.images, NoVariation(), seed=0)
        assert all(d.relative_error == pytest.approx(0.0) for d in devs)

    def test_variation_produces_positive_error(self, tracer, blob_dataset):
        devs = tracer.trace(blob_dataset.images, LogNormalVariation(0.5), seed=0)
        assert all(d.relative_error > 0 for d in devs)

    def test_trace_is_deterministic(self, tracer, blob_dataset):
        """Same seed, same deviations — the tracer runs on explicit spawned
        streams, not on id()/hash()-derived seeds."""
        kwargs = dict(variation=LogNormalVariation(0.4), seed=7)
        first = tracer.trace(blob_dataset.images, **kwargs)
        second = tracer.trace(blob_dataset.images, **kwargs)
        assert [d.relative_error for d in first] == [
            d.relative_error for d in second
        ]

    def test_different_seeds_differ(self, tracer, blob_dataset):
        a = tracer.trace(blob_dataset.images, LogNormalVariation(0.4), seed=0)
        b = tracer.trace(blob_dataset.images, LogNormalVariation(0.4), seed=1)
        assert [d.relative_error for d in a] != [d.relative_error for d in b]

    def test_larger_sigma_larger_deviation(self, tracer, blob_dataset):
        small = tracer.trace(blob_dataset.images, LogNormalVariation(0.05), seed=3)
        large = tracer.trace(blob_dataset.images, LogNormalVariation(0.8), seed=3)
        assert sum(d.relative_error for d in large) > sum(
            d.relative_error for d in small
        )


class TestRestoration:
    def test_forward_hooks_removed_after_trace(self, tracer, mlp, blob_dataset):
        originals = [layer.forward for _, layer in weighted_layers(mlp)]
        tracer.trace(blob_dataset.images, LogNormalVariation(0.3), seed=0)
        assert [layer.forward for _, layer in weighted_layers(mlp)] == originals

    def test_forward_hooks_removed_on_exception(self, tracer, mlp):
        originals = [layer.forward for _, layer in weighted_layers(mlp)]
        bad_input = np.ones((2, 17))  # wrong feature count -> forward raises
        with pytest.raises(Exception):
            tracer.trace(bad_input, LogNormalVariation(0.3), seed=0)
        assert [layer.forward for _, layer in weighted_layers(mlp)] == originals

    def test_training_mode_restored(self, tracer, mlp, blob_dataset):
        mlp.train()
        tracer.trace(blob_dataset.images, LogNormalVariation(0.3), seed=0)
        assert mlp.training
        mlp.eval()
        tracer.trace(blob_dataset.images, LogNormalVariation(0.3), seed=0)
        assert not mlp.training

    def test_weights_restored_after_trace(self, tracer, mlp, blob_dataset):
        before = {n: p.data.copy() for n, p in mlp.named_parameters()}
        tracer.trace(blob_dataset.images, LogNormalVariation(0.5), seed=0)
        for name, param in mlp.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])


class TestAmplificationProfile:
    def test_profile_matches_single_trace_for_one_sample(
        self, tracer, blob_dataset
    ):
        """n_samples=1 averages one draw: exactly trace() on stream 0 of
        the spawned schedule."""
        from repro.utils.rng import spawn_rngs

        profile = tracer.amplification_profile(
            blob_dataset.images, LogNormalVariation(0.4), n_samples=1, seed=5
        )
        devs = tracer.trace(
            blob_dataset.images, LogNormalVariation(0.4),
            seed=spawn_rngs(5, 1)[0],
        )
        assert profile == pytest.approx([d.relative_error for d in devs])

    def test_profile_is_deterministic(self, tracer, blob_dataset):
        kwargs = dict(n_samples=3, seed=2)
        first = tracer.amplification_profile(
            blob_dataset.images, LogNormalVariation(0.4), **kwargs
        )
        second = tracer.amplification_profile(
            blob_dataset.images, LogNormalVariation(0.4), **kwargs
        )
        assert first == second

    def test_profile_length_matches_layers(self, tracer, mlp, blob_dataset):
        profile = tracer.amplification_profile(
            blob_dataset.images, LogNormalVariation(0.3), n_samples=2, seed=0
        )
        assert len(profile) == len(weighted_layers(mlp))
        assert all(err >= 0 for err in profile)

    def test_unseeded_profile_runs(self, tracer, mlp, blob_dataset):
        """seed=None is the explicitly nondeterministic path; it must still
        produce a well-formed profile."""
        profile = tracer.amplification_profile(
            blob_dataset.images, LogNormalVariation(0.3), n_samples=2,
            seed=None,
        )
        assert len(profile) == len(weighted_layers(mlp))
