"""Lipschitz machinery: bounds (eq. 10), spectral norms, regularizer (eq. 11)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.nn as nn
from repro.autograd import Tensor
from repro.lipschitz import (
    OrthogonalityRegularizer, empirical_lipschitz, lambda_bound,
    layer_spectral_norms, lognormal_bound, network_lipschitz_bound,
    power_iteration, spectral_norm, weight_as_matrix,
)
from repro.models import MLP
from repro.nn.module import Parameter
from repro.optim import Adam


class TestBounds:
    def test_sigma_zero_bound_is_one(self):
        assert lognormal_bound(0.0) == pytest.approx(1.0)

    def test_paper_sigma_half_value(self):
        # e^{0.125} + 3 sqrt((e^{0.25}-1) e^{0.25})
        s2 = 0.25
        expected = math.exp(s2 / 2) + 3 * math.sqrt(
            (math.exp(s2) - 1) * math.exp(s2)
        )
        assert lognormal_bound(0.5) == pytest.approx(expected)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 1.5), st.floats(0.001, 1.5))
    def test_bound_monotone_in_sigma(self, a, b):
        lo, hi = sorted([a, a + b])
        assert lognormal_bound(hi) >= lognormal_bound(lo)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.01, 1.0))
    def test_lambda_inverse_of_bound(self, sigma):
        assert lambda_bound(sigma) == pytest.approx(1.0 / lognormal_bound(sigma))

    def test_lambda_scales_with_k(self):
        assert lambda_bound(0.5, k=2.0) == pytest.approx(2 * lambda_bound(0.5))

    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            lognormal_bound(-0.1)

    def test_nonpositive_k_raises(self):
        with pytest.raises(ValueError):
            lambda_bound(0.5, k=0.0)


class TestSpectral:
    def test_matches_numpy_svd(self):
        w = np.random.default_rng(0).normal(size=(6, 9))
        assert spectral_norm(w) == pytest.approx(
            np.linalg.svd(w, compute_uv=False)[0]
        )

    def test_conv_weight_flattened(self):
        w = np.random.default_rng(1).normal(size=(4, 3, 3, 3))
        assert spectral_norm(w) == pytest.approx(
            np.linalg.svd(w.reshape(4, -1), compute_uv=False)[0]
        )

    def test_weight_as_matrix_rejects_rank3(self):
        with pytest.raises(ValueError):
            weight_as_matrix(np.zeros((2, 2, 2)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_power_iteration_close_to_svd(self, seed):
        w = np.random.default_rng(seed).normal(size=(8, 5))
        sigma, _ = power_iteration(w, iters=200, seed=0)
        assert sigma == pytest.approx(spectral_norm(w), rel=1e-3)

    def test_power_iteration_zero_matrix(self):
        sigma, _ = power_iteration(np.zeros((4, 4)))
        assert sigma == 0.0

    def test_orthogonal_matrix_norm_is_gain(self):
        from repro.nn import init
        w = init.orthogonal((6, 6), np.random.default_rng(0), gain=0.5)
        assert spectral_norm(w) == pytest.approx(0.5)


class TestRegularizer:
    def test_zero_penalty_at_scaled_orthogonal(self):
        """A model whose every weight is lambda-scaled orthogonal has (near)
        zero penalty — the regularizer's fixed point."""
        from repro.nn import init
        lam = 0.7
        model = nn.Sequential(nn.Linear(8, 8, seed=0), nn.ReLU(),
                              nn.Linear(8, 8, seed=1))
        for layer in (model[0], model[2]):
            layer.weight.data = init.orthogonal(
                (8, 8), np.random.default_rng(0), gain=lam
            )
        reg = OrthogonalityRegularizer(lam, beta=1.0)
        assert reg.penalty(model).item() == pytest.approx(0.0, abs=1e-12)

    def test_penalty_positive_otherwise(self, mlp):
        reg = OrthogonalityRegularizer(0.5, beta=1.0)
        assert reg.penalty(mlp).item() > 0

    def test_gradient_descends_toward_lambda(self):
        """Optimizing only the penalty must drive the spectral norm to
        lambda."""
        lam = 0.6
        model = nn.Sequential(nn.Linear(6, 6, seed=3))
        reg = OrthogonalityRegularizer(lam, beta=1.0)
        opt = Adam([model[0].weight], lr=0.02)
        for _ in range(400):
            opt.zero_grad()
            reg.penalty(model).backward()
            opt.step()
        # Adam hovers slightly above the fixed point; 0.05 absolute slack.
        assert spectral_norm(model[0].weight.data) == pytest.approx(lam, abs=0.05)

    def test_violations_reporting(self, mlp):
        reg = OrthogonalityRegularizer(0.01, beta=1.0)
        violations = reg.violations(mlp)
        assert all(v >= 0 for v in violations.values())
        assert any(v > 0 for v in violations.values())

    def test_include_predicate(self, mlp):
        reg_all = OrthogonalityRegularizer(0.5, beta=1.0)
        reg_first = OrthogonalityRegularizer(
            0.5, beta=1.0, include=lambda name, m: name == "net.1"
        )
        assert reg_first.penalty(mlp).item() < reg_all.penalty(mlp).item()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            OrthogonalityRegularizer(0.0)
        with pytest.raises(ValueError):
            OrthogonalityRegularizer(1.0, beta=-1.0)

    def test_no_weighted_layers_raises(self):
        with pytest.raises(ValueError):
            OrthogonalityRegularizer(1.0).penalty(nn.ReLU())

    def test_beta_scales_penalty(self, mlp):
        p1 = OrthogonalityRegularizer(0.5, beta=1.0).penalty(mlp).item()
        p2 = OrthogonalityRegularizer(0.5, beta=2.0).penalty(mlp).item()
        assert p2 == pytest.approx(2 * p1)


class TestEstimates:
    def test_layer_norms_keys(self, mlp):
        norms = layer_spectral_norms(mlp)
        assert set(norms) == {"net.1", "net.3"}

    def test_network_bound_is_product(self, mlp):
        norms = layer_spectral_norms(mlp)
        assert network_lipschitz_bound(mlp) == pytest.approx(
            np.prod(list(norms.values()))
        )

    def test_empirical_below_composition_bound(self):
        model = MLP(4, [16, 16], 3, flatten_input=False, seed=0)
        x = np.random.default_rng(0).normal(size=(32, 4))
        emp = empirical_lipschitz(model, x, n_pairs=16, seed=0)
        assert emp <= network_lipschitz_bound(model) * (1 + 1e-6)
        assert emp > 0
