"""Public API surface: every documented name imports and __all__ is honest."""

import importlib

import pytest

SUBPACKAGES = [
    "repro.autograd",
    "repro.nn",
    "repro.optim",
    "repro.data",
    "repro.variation",
    "repro.hardware",
    "repro.lipschitz",
    "repro.compensation",
    "repro.rl",
    "repro.evaluation",
    "repro.baselines",
    "repro.models",
    "repro.core",
    "repro.utils",
]


class TestPublicAPI:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert getattr(module, symbol, None) is not None, (
                f"{name}.__all__ lists {symbol!r} but it does not resolve"
            )

    def test_version_string(self):
        import repro
        parts = repro.__version__.split(".")
        assert len(parts) == 3

    def test_core_lazy_exports(self):
        from repro import core
        assert core.CorrectNet is not None
        assert core.CorrectNetResult is not None
        with pytest.raises(AttributeError):
            core.DoesNotExist

    def test_paper_equations_accessible(self):
        """The names that map directly to the paper's equations exist and
        compose (a documentation-level contract)."""
        from repro.lipschitz import lambda_bound  # eq. 10
        from repro.lipschitz import OrthogonalityRegularizer  # eq. 11
        from repro.variation import LogNormalVariation  # eq. 1-2
        from repro.rl import CompensationEnv  # eq. 12 reward

        lam = lambda_bound(0.5, k=1.0)
        assert 0 < lam < 1
        assert OrthogonalityRegularizer(lam).lam == lam
        assert LogNormalVariation(0.5).sigma == 0.5
        assert CompensationEnv is not None
