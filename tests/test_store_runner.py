"""Job runner: resume is bitwise, dedup is zero-work, caching is real.

The acceptance properties of the evaluation service live here:

- a drained job's stored result is bitwise-identical to a direct
  ``execute()`` of the same plan;
- an interrupted-then-resumed job (cooperative preemption or crashed
  lease) is bitwise-identical to an uninterrupted run — including where
  an adaptive rule stops it;
- resubmitting a finished evaluation is a cache hit and performs zero
  work;
- ``cached_evaluate`` returns the stored payload without re-executing.

Evaluations run on a miniature dataset (the factory registry is patched)
so the whole file stays unit-test sized.
"""

from __future__ import annotations

import pytest

from repro.data import synth_mnist
from repro.evaluation.executor import execute, IncrementalEvaluation
from repro.evaluation.montecarlo import MonteCarloEvaluator
from repro.evaluation.plan import build_plan
from repro.models.registry import build_model
from repro.store import JobRequest, materialize, ResultStore
from repro.store.runner import cached_evaluate, drain


def _tiny_factory():
    return synth_mnist(train_per_class=6, test_per_class=3)


@pytest.fixture(autouse=True)
def tiny_datasets(monkeypatch):
    from repro.store import jobs as store_jobs

    monkeypatch.setitem(store_jobs.DATASET_FACTORIES, "synth_mnist",
                        _tiny_factory)


def _request(**overrides):
    kwargs = dict(
        model="mlp",
        dataset="synth_mnist",
        variation={"kind": "lognormal", "sigma": 0.4},
        n_samples=6,
        seed=7,
        chunk_samples=2,
    )
    kwargs.update(overrides)
    return JobRequest(**kwargs)


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "store.sqlite")) as s:
        yield s


def _direct_accuracies(request):
    m = materialize(request)
    return [float(a) for a in execute(m.plan, m.model, m.dataset).accuracies]


class TestDrain:
    def test_drained_result_is_bitwise_equal_to_direct_execute(self, store):
        request = _request()
        m = materialize(request)
        store.submit(m.fingerprint, m.request.to_dict())
        stats = drain(store, owner="w1")
        assert [o.status for o in stats.outcomes] == ["done"]
        stored = store.result(m.fingerprint)
        assert stored["accuracies"] == _direct_accuracies(request)
        assert store.job(m.fingerprint).state == "done"

    def test_resubmit_after_done_is_zero_work(self, store):
        request = _request()
        m = materialize(request)
        store.submit(m.fingerprint, m.request.to_dict())
        drain(store, owner="w1")
        attempts_before = store.job(m.fingerprint).attempts
        outcome = store.submit(m.fingerprint, m.request.to_dict())
        assert outcome.cache_hit
        stats = drain(store, owner="w2")
        assert stats.outcomes == []  # nothing claimable: zero work
        assert store.job(m.fingerprint).attempts == attempts_before

    def test_max_chunks_preempts_and_resume_is_bitwise(self, store):
        request = _request()
        m = materialize(request)
        store.submit(m.fingerprint, m.request.to_dict())
        first = drain(store, owner="w1", max_jobs=1, max_chunks_per_job=1)
        outcome = first.outcomes[0]
        assert outcome.status == "preempted"
        assert outcome.chunks_run == 1 and outcome.draws == 2
        assert store.job(m.fingerprint).state == "pending"
        second = drain(store, owner="w2")
        resumed = second.outcomes[0]
        assert resumed.status == "done" and resumed.resumed_draws == 2
        assert store.result(m.fingerprint)["accuracies"] == \
            _direct_accuracies(request)

    def test_crashed_lease_resume_is_bitwise(self, store):
        """A runner that dies mid-job (chunks persisted, lease held) is
        fenced out and its job finishes bitwise-identically elsewhere."""
        from repro.store.db import StaleLeaseError

        request = _request()
        m = materialize(request)
        store.submit(m.fingerprint, m.request.to_dict())
        # Simulate the crash: claim with an already-expired lease and
        # persist one chunk, then never release.
        row = store.claim("crasher", lease_seconds=0.0)
        ev = IncrementalEvaluation(
            m.plan, m.model, m.dataset,
            on_chunk=lambda i, s, t, a: store.put_chunk(
                row.fingerprint, "crasher", i, s, t, list(a)),
        )
        with ev:
            ev.run_chunk()
        stats = drain(store, owner="rescuer")
        assert stats.done == 1
        assert stats.outcomes[0].resumed_draws == 2
        assert store.result(m.fingerprint)["accuracies"] == \
            _direct_accuracies(request)
        # The zombie is fenced out of the finished job.
        with pytest.raises(StaleLeaseError):
            store.put_chunk(row.fingerprint, "crasher", 1, 2, 4, [0.0, 0.0])

    def test_adaptive_job_resumes_to_the_same_stop_point(self, store):
        request = _request(tolerance=0.06, min_samples=4, n_samples=12)
        m = materialize(request)
        direct = execute(m.plan, m.model, m.dataset)
        store.submit(m.fingerprint, m.request.to_dict())
        first = drain(store, owner="w1", max_jobs=1, max_chunks_per_job=1)
        assert first.outcomes[0].status == "preempted"
        drain(store, owner="w2")
        stored = store.result(m.fingerprint)
        assert stored["accuracies"] == [float(a) for a in direct.accuracies]
        assert stored["stopped_early"] == direct.stopped_early

    def test_fingerprint_mismatch_fails_the_job(self, store, tmp_path):
        train, _ = _tiny_factory()
        checkpoint = str(tmp_path / "ckpt.npz")
        model = build_model("mlp", train, seed=3)
        model.save(checkpoint)
        request = _request(checkpoint=checkpoint)
        m = materialize(request)
        store.submit(m.fingerprint, m.request.to_dict())
        # The checkpoint file changes between submit and run.
        build_model("mlp", train, seed=4).save(checkpoint)
        stats = drain(store, owner="w1")
        assert stats.failed == 1
        row = store.job(m.fingerprint)
        assert row.state == "failed"
        assert "fingerprint mismatch" in row.error

    def test_run_job_requires_positive_max_chunks(self, store):
        with pytest.raises(ValueError, match="at least 1"):
            drain(store, owner="w", max_chunks_per_job=0)


class TestCachedEvaluate:
    def test_miss_executes_and_matches_direct(self, tmp_path):
        train, test = _tiny_factory()
        model = build_model("mlp", train, seed=0)
        evaluator = MonteCarloEvaluator(test, n_samples=5, seed=7,
                                        vectorized=True)
        path = str(tmp_path / "cache.sqlite")
        result = cached_evaluate(path, evaluator, model, "lognormal:0.3")
        direct = evaluator.evaluate(model, "lognormal:0.3")
        assert result.accuracies == direct.accuracies

    def test_hit_returns_the_stored_payload_without_executing(self, tmp_path):
        train, test = _tiny_factory()
        model = build_model("mlp", train, seed=0)
        evaluator = MonteCarloEvaluator(test, n_samples=5, seed=7,
                                        vectorized=True)
        path = str(tmp_path / "cache.sqlite")
        cached_evaluate(path, evaluator, model, "lognormal:0.3")
        # Plant a sentinel payload under the fingerprint: a second call
        # must return it verbatim — proof it looked up rather than ran.
        from repro.store.fingerprint import plan_fingerprint

        model.eval()
        fingerprint = plan_fingerprint(
            evaluator.plan(model, "lognormal:0.3"), model, test
        )
        model.train()
        sentinel = {"accuracies": [0.123], "stopped_early": False,
                    "confidence": 0.95, "ci_method": "clt"}
        with ResultStore(path) as store:
            store.put_result(fingerprint, sentinel)
        again = cached_evaluate(path, evaluator, model, "lognormal:0.3")
        assert again.accuracies == [0.123]

    def test_restores_training_mode(self, tmp_path):
        train, test = _tiny_factory()
        model = build_model("mlp", train, seed=0)
        model.train()
        evaluator = MonteCarloEvaluator(test, n_samples=3, seed=7)
        cached_evaluate(str(tmp_path / "c.sqlite"), evaluator, model,
                        "lognormal:0.3")
        assert model.training


class TestIncrementalResume:
    """The executor-side resume contract the runner builds on."""

    def _plan(self, mlp, blob_dataset, **overrides):
        kwargs = dict(n_samples=6, seed=5, vectorized=True, chunk_samples=2)
        kwargs.update(overrides)
        mlp.eval()
        return build_plan(mlp, blob_dataset, "lognormal:0.4", **kwargs)

    def test_resume_must_precede_run_chunk(self, mlp, blob_dataset):
        plan = self._plan(mlp, blob_dataset)
        ev = IncrementalEvaluation(plan, mlp, blob_dataset)
        with ev:
            ev.run_chunk()
        with pytest.raises(RuntimeError, match="must precede"):
            ev.resume([0.5, 0.5])

    def test_resume_rejects_misaligned_prefix(self, mlp, blob_dataset):
        plan = self._plan(mlp, blob_dataset)
        ev = IncrementalEvaluation(plan, mlp, blob_dataset)
        with pytest.raises(ValueError, match="not aligned"):
            ev.resume([0.5])  # one draw into a 2-draw chunk

    def test_resume_rejects_prefix_past_schedule(self, mlp, blob_dataset):
        plan = self._plan(mlp, blob_dataset)
        ev = IncrementalEvaluation(plan, mlp, blob_dataset)
        with pytest.raises(ValueError, match="extends past"):
            ev.resume([0.5] * 8)

    def test_on_chunk_rejected_on_pool_backend(self, mlp, blob_dataset):
        plan = self._plan(mlp, blob_dataset, vectorized=False, n_workers=2)
        assert plan.backend == "pool"
        with pytest.raises(ValueError, match="pool backend"):
            execute(plan, mlp, blob_dataset, on_chunk=lambda *a: None)

    def test_streamed_chunks_reassemble_the_full_run(self, mlp, blob_dataset):
        plan = self._plan(mlp, blob_dataset)
        seen = []
        result = execute(
            plan, mlp, blob_dataset,
            on_chunk=lambda i, s, t, a: seen.append((i, s, t, list(a))),
        )
        assert [i for i, *_ in seen] == [0, 1, 2]
        streamed = [a for *_, accs in seen for a in accs]
        assert streamed == result.accuracies
