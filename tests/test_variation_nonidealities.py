"""Programming-level quantization and retention-drift models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.variation import ConductanceDrift, LevelQuantization


class TestLevelQuantization:
    def test_values_on_grid(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(50, 50))
        q = LevelQuantization(bits=3)
        out = q.perturb(w, rng)
        scale = np.abs(w).max()
        step = 2 * scale / (2**3 - 2)
        ratios = out / step
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-9)

    def test_level_count_respected(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=100_000)
        out = LevelQuantization(bits=2).perturb(w, rng)
        assert np.unique(out).size <= 2**2 - 1

    def test_high_resolution_near_lossless(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(20, 20))
        out = LevelQuantization(bits=12).perturb(w, rng)
        assert np.abs(out - w).max() < np.abs(w).max() / 1000

    def test_deterministic(self):
        w = np.random.default_rng(3).normal(size=(5, 5))
        q = LevelQuantization(bits=4)
        a = q.perturb(w, np.random.default_rng(0))
        b = q.perturb(w, np.random.default_rng(999))
        np.testing.assert_allclose(a, b)

    def test_zero_matrix_unchanged(self):
        w = np.zeros(10)
        out = LevelQuantization(bits=4).perturb(w, np.random.default_rng(0))
        np.testing.assert_allclose(out, 0.0)

    def test_extremes_preserved(self):
        w = np.array([-1.0, 0.0, 1.0])
        out = LevelQuantization(bits=3).perturb(w, np.random.default_rng(0))
        assert out[0] == pytest.approx(-1.0)
        assert out[2] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 10))
    def test_error_bounded_by_half_step(self, bits):
        rng = np.random.default_rng(bits)
        w = rng.normal(size=1000)
        out = LevelQuantization(bits).perturb(w, rng)
        scale = np.abs(w).max()
        step = 2 * scale / (2**bits - 2)
        assert np.abs(out - w).max() <= step / 2 + 1e-12

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            LevelQuantization(0)

    def test_magnitude_decreases_with_bits(self):
        assert LevelQuantization(8).magnitude < LevelQuantization(2).magnitude


class TestConductanceDrift:
    def test_no_time_no_drift(self):
        w = np.random.default_rng(0).normal(size=(5, 5))
        out = ConductanceDrift(time_ratio=1.0).perturb(
            w, np.random.default_rng(1)
        )
        np.testing.assert_allclose(out, w)

    def test_magnitudes_shrink(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=10_000) + np.sign(rng.normal(size=10_000)) * 0.5
        out = ConductanceDrift(time_ratio=1e6, nu_median=0.05).perturb(w, rng)
        assert (np.abs(out) <= np.abs(w) + 1e-12).all()

    def test_mean_attenuation_closed_form(self):
        drift = ConductanceDrift(time_ratio=1e4, nu_median=0.02, nu_sigma=0.0)
        w = np.ones(10_000)
        out = drift.perturb(w, np.random.default_rng(0))
        assert out.mean() == pytest.approx(drift.mean_attenuation(), rel=1e-9)

    def test_longer_time_more_drift(self):
        w = np.ones(50_000)
        short = ConductanceDrift(1e2, 0.05).perturb(w, np.random.default_rng(0))
        long = ConductanceDrift(1e6, 0.05).perturb(w, np.random.default_rng(0))
        assert long.mean() < short.mean()

    def test_sign_preserved(self):
        w = np.array([-2.0, 3.0, -0.5])
        out = ConductanceDrift(1e4, 0.05).perturb(w, np.random.default_rng(1))
        np.testing.assert_array_equal(np.sign(out), np.sign(w))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ConductanceDrift(time_ratio=0.5)
        with pytest.raises(ValueError):
            ConductanceDrift(1e3, nu_median=-0.1)

    def test_works_with_injector_and_evaluator(self, lenet, tiny_test):
        from repro.evaluation import MonteCarloEvaluator

        ev = MonteCarloEvaluator(tiny_test, n_samples=3, seed=0)
        result = ev.evaluate(lenet, ConductanceDrift(1e5, nu_median=0.1))
        assert len(result.accuracies) == 3
