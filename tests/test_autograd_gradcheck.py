"""Every differentiable op verified against central finite differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradcheck

RNG = np.random.default_rng(2024)


def _t(*shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestElementwiseGrads:
    def test_add(self):
        assert gradcheck(lambda a, b: a + b, [_t(3, 4), _t(3, 4)])

    def test_add_broadcast(self):
        assert gradcheck(lambda a, b: a + b, [_t(3, 4), _t(4)])

    def test_mul_broadcast(self):
        assert gradcheck(lambda a, b: a * b, [_t(2, 3), _t(1, 3)])

    def test_div(self):
        a = _t(3)
        b = Tensor(RNG.uniform(0.5, 2.0, size=3), requires_grad=True)
        assert gradcheck(lambda a, b: a / b, [a, b])

    def test_pow(self):
        x = Tensor(RNG.uniform(0.5, 2.0, size=4), requires_grad=True)
        assert gradcheck(lambda x: x**3, [x])

    def test_exp(self):
        assert gradcheck(lambda x: x.exp(), [_t(5)])

    def test_log(self):
        x = Tensor(RNG.uniform(0.5, 3.0, size=5), requires_grad=True)
        assert gradcheck(lambda x: x.log(), [x])

    def test_tanh(self):
        assert gradcheck(lambda x: x.tanh(), [_t(5)])

    def test_sigmoid(self):
        assert gradcheck(lambda x: x.sigmoid(), [_t(5)])

    def test_relu_away_from_kink(self):
        x = Tensor(RNG.uniform(0.1, 1.0, size=5) * RNG.choice([-1, 1], 5),
                   requires_grad=True)
        assert gradcheck(lambda x: x.relu(), [x])

    def test_abs_away_from_zero(self):
        x = Tensor(RNG.uniform(0.5, 1.0, size=5) * RNG.choice([-1, 1], 5),
                   requires_grad=True)
        assert gradcheck(lambda x: x.abs(), [x])


class TestMatmulGrads:
    def test_2d_2d(self):
        assert gradcheck(lambda a, b: a @ b, [_t(3, 4), _t(4, 2)])

    def test_1d_1d(self):
        assert gradcheck(lambda a, b: a @ b, [_t(4), _t(4)])

    def test_2d_1d(self):
        assert gradcheck(lambda a, b: a @ b, [_t(3, 4), _t(4)])

    def test_1d_2d(self):
        assert gradcheck(lambda a, b: a @ b, [_t(3), _t(3, 2)])


class TestReductionGrads:
    def test_sum_all(self):
        assert gradcheck(lambda x: x.sum(), [_t(3, 4)])

    def test_sum_axis(self):
        assert gradcheck(lambda x: x.sum(axis=1), [_t(3, 4)])

    def test_sum_axis_tuple_keepdims(self):
        assert gradcheck(lambda x: x.sum(axis=(0, 2), keepdims=True), [_t(2, 3, 4)])

    def test_mean(self):
        assert gradcheck(lambda x: x.mean(axis=0), [_t(3, 4)])

    def test_var(self):
        assert gradcheck(lambda x: x.var(axis=1), [_t(3, 4)], atol=1e-4)

    def test_max_unique(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]]),
                   requires_grad=True)
        assert gradcheck(lambda x: x.max(axis=1), [x])


class TestNNFunctionalGrads:
    def test_conv2d_all_inputs(self):
        x, w, b = _t(2, 3, 5, 5), _t(4, 3, 3, 3), _t(4)
        assert gradcheck(lambda x, w, b: F.conv2d(x, w, b, 1, 1), [x, w, b])

    def test_conv2d_stride2_nopad(self):
        x, w = _t(1, 2, 6, 6), _t(3, 2, 2, 2)
        assert gradcheck(lambda x, w: F.conv2d(x, w, None, 2, 0), [x, w])

    def test_avg_pool(self):
        assert gradcheck(lambda x: F.avg_pool2d(x, 2), [_t(2, 2, 4, 4)])

    def test_max_pool(self):
        assert gradcheck(lambda x: F.max_pool2d(x, 2), [_t(2, 2, 4, 4)])

    def test_adaptive_avg_pool_non_divisible(self):
        assert gradcheck(
            lambda x: F.adaptive_avg_pool2d(x, (3, 2)), [_t(1, 2, 7, 5)]
        )

    def test_softmax(self):
        assert gradcheck(lambda x: F.softmax(x, axis=-1), [_t(4, 6)])

    def test_log_softmax(self):
        assert gradcheck(lambda x: F.log_softmax(x, axis=-1), [_t(4, 6)])

    def test_cross_entropy(self):
        labels = RNG.integers(0, 5, size=6)
        assert gradcheck(lambda x: F.cross_entropy(x, labels), [_t(6, 5)])

    def test_linear(self):
        x, w, b = _t(4, 3), _t(2, 3), _t(2)
        assert gradcheck(lambda x, w, b: F.linear(x, w, b), [x, w, b])

    def test_pad2d(self):
        assert gradcheck(lambda x: x.pad2d(2), [_t(1, 2, 3, 3)])

    def test_batchnorm_training_mode(self):
        import repro.nn as nn

        bn = nn.BatchNorm2d(2)
        x = _t(3, 2, 2, 2)
        assert gradcheck(lambda x: bn(x).sum(), [x], atol=1e-4)
