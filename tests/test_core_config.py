"""Pipeline configuration and result serialization."""

import dataclasses
import json

import pytest

from repro.core.config import (
    CompensationConfig, EvalConfig, PipelineConfig, RLConfig, TrainConfig,
    fast_pipeline_config,
)


class TestConfigDataclasses:
    def test_defaults_match_paper_protocol(self):
        config = PipelineConfig()
        assert config.sigma == 0.5
        assert config.train.k == 1.0
        assert config.eval.n_samples == 250
        assert config.rl.overhead_limits == (0.01, 0.02, 0.03)
        assert config.eval.candidate_threshold == 0.95

    def test_fast_config_smaller(self):
        fast = fast_pipeline_config()
        full = PipelineConfig()
        assert fast.eval.n_samples < full.eval.n_samples
        assert fast.rl.episodes <= full.rl.episodes

    def test_configs_are_plain_dataclasses(self):
        for cls in (TrainConfig, CompensationConfig, RLConfig, EvalConfig,
                    PipelineConfig):
            assert dataclasses.is_dataclass(cls)

    def test_json_serializable(self):
        config = fast_pipeline_config(sigma=0.4, seed=9)
        blob = json.dumps(dataclasses.asdict(config))
        restored = json.loads(blob)
        assert restored["sigma"] == 0.4
        assert restored["train"]["seed"] == 9

    def test_independent_instances(self):
        a = PipelineConfig()
        b = PipelineConfig()
        a.train.epochs = 999
        assert b.train.epochs != 999


class TestResultSerialization:
    def test_result_as_dict_roundtrips_json(self):
        from repro.compensation import CompensationPlan
        from repro.core.pipeline import CorrectNetResult
        from repro.evaluation.montecarlo import MCResult

        result = CorrectNetResult(
            original_accuracy=0.95,
            degraded=MCResult([0.3, 0.4]),
            corrected=MCResult([0.85, 0.9]),
            overhead=0.02,
            compensated_layers=[0, 1],
            candidates=[0, 1, 2],
            plan=CompensationPlan({0: 1.0, 1: 0.5}),
            model=None,
        )
        blob = json.dumps(result.as_dict())
        restored = json.loads(blob)
        assert restored["recovery"] == pytest.approx(0.875 / 0.95)
        assert restored["plan"] == {"0": 1.0, "1": 0.5}
        assert restored["compensated_layers"] == [0, 1]
