"""Integration: the paper's suppression mechanism observed end to end.

These tests tie together training, the regularizer, variation injection and
the tracer on small-but-real workloads, asserting the *mechanistic* claims:
regularization shrinks the Lipschitz product, suppressed networks degrade
less, and error profiles stop growing with depth.
"""

import numpy as np
import pytest

from repro.core import Trainer
from repro.data import synth_mnist
from repro.evaluation import (
    ErrorPropagationTracer, MonteCarloEvaluator, accuracy,
)
from repro.lipschitz import (
    OrthogonalityRegularizer, lambda_bound, layer_spectral_norms,
    network_lipschitz_bound,
)
from repro.models import LeNet5
from repro.optim import Adam
from repro.variation import LogNormalVariation


@pytest.fixture(scope="module")
def trained_pair():
    """(plain, regularized) LeNets trained identically on tiny mnist."""
    train, test = synth_mnist(train_per_class=24, test_per_class=12)
    models = {}
    for name, reg in (
        ("plain", None),
        ("regularized", OrthogonalityRegularizer(lambda_bound(0.5), beta=1.0)),
    ):
        model = LeNet5(num_classes=10, in_channels=1, input_size=16,
                       width_multiplier=1.0, seed=0)
        opt = Adam(list(model.parameters()), lr=3e-3)
        Trainer(model, opt, regularizer=reg, seed=0).fit(
            train, epochs=12, batch_size=32
        )
        models[name] = model
    return models, train, test


class TestSuppressionMechanism:
    def test_both_models_learn(self, trained_pair):
        models, _, test = trained_pair
        assert accuracy(models["plain"], test) > 0.7
        assert accuracy(models["regularized"], test) > 0.7

    def test_regularization_shrinks_lipschitz_product(self, trained_pair):
        models, _, _ = trained_pair
        assert (network_lipschitz_bound(models["regularized"])
                < network_lipschitz_bound(models["plain"]))

    def test_regularization_shrinks_every_layer_worstcase(self, trained_pair):
        models, _, _ = trained_pair
        plain = layer_spectral_norms(models["plain"])
        regd = layer_spectral_norms(models["regularized"])
        assert max(regd.values()) < max(plain.values())

    def test_suppressed_model_more_robust(self, trained_pair):
        """The core Fig.-2-vs-Fig.-7 contrast at unit scale: same
        architecture, same data, regularized training retains more accuracy
        under sigma=0.5 variations."""
        models, _, test = trained_pair
        ev = MonteCarloEvaluator(test, n_samples=12, seed=3)
        var = LogNormalVariation(0.5)
        plain = ev.evaluate(models["plain"], var)
        regd = ev.evaluate(models["regularized"], var)
        # normalize by each model's clean accuracy (fair comparison)
        plain_ratio = plain.mean / accuracy(models["plain"], test)
        regd_ratio = regd.mean / accuracy(models["regularized"], test)
        assert regd_ratio > plain_ratio - 0.02

    def test_error_profile_flatter_when_regularized(self, trained_pair):
        """Fig. 4's picture: relative feature error accumulated at the last
        layer is smaller for the regularized network."""
        models, train, _ = trained_pair
        x = train.images[:16]
        var = LogNormalVariation(0.4)
        plain_profile = ErrorPropagationTracer(
            models["plain"]).amplification_profile(x, var, n_samples=6, seed=0)
        regd_profile = ErrorPropagationTracer(
            models["regularized"]).amplification_profile(x, var, n_samples=6,
                                                         seed=0)
        assert regd_profile[-1] < plain_profile[-1]


class TestMarginMechanism:
    def test_margin_and_shift_scale_together(self, trained_pair):
        """Consistency of the margin diagnostics: regularization shrinks
        logit scale, so both the margin and the variation-induced shift
        shrink with it — their *ratio* stays in the same ballpark (the
        robustness gain shows up in the tail of the distribution and in
        accuracy, not in this median summary)."""
        from repro.evaluation import logit_shift_under_variation, margin_report

        models, _, test = trained_pair
        var = LogNormalVariation(0.4)
        ratios = {}
        for name, model in models.items():
            report = margin_report(model, test)
            shift = logit_shift_under_variation(
                model, test, var, n_samples=6, seed=0
            )
            assert report.median > 0
            assert shift > 0
            ratios[name] = report.median / shift
        # Same ballpark: within a factor of 3 of each other.
        lo, hi = sorted(ratios.values())
        assert hi < 3 * lo


class TestLambdaBoundEndToEnd:
    def test_bound_holds_under_sampled_variations(self):
        """For a layer trained to ||W|| ~= lambda, the *sampled* perturbed
        spectral norm stays below k=1 in the vast majority of draws — the
        3-sigma construction of eq. (10)."""
        import repro.nn as nn
        from repro.nn import init
        from repro.lipschitz.spectral import spectral_norm

        sigma = 0.3
        lam = lambda_bound(sigma)
        rng = np.random.default_rng(0)
        w = init.orthogonal((12, 12), rng, gain=lam)
        var = LogNormalVariation(sigma)
        exceed = 0
        n = 200
        for i in range(n):
            perturbed_w = var.perturb(w, np.random.default_rng(i))
            if spectral_norm(perturbed_w) > 1.0:
                exceed += 1
        # mu+3sigma is an elementwise bound, not an exact operator bound,
        # but violations must be rare.
        assert exceed / n < 0.2
