"""Variation injection: in-place perturbation, restoration, scoping."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor
from repro.compensation import CompensationPlan
from repro.variation import (
    LogNormalVariation, VariationInjector, perturbed, weighted_layers,
)


def _snapshot(model):
    return {n: p.data.copy() for n, p in model.named_parameters()}


class TestWeightedLayers:
    def test_order_and_count_lenet(self, lenet):
        layers = weighted_layers(lenet)
        assert len(layers) == 5  # conv, conv, fc, fc, fc
        assert layers[0][0] == "net.0"

    def test_excludes_digital_modules(self, lenet):
        comp = CompensationPlan({0: 0.5}).apply(lenet, seed=0)
        names = [n for n, _ in weighted_layers(comp)]
        assert len(names) == 5  # generator/compensator not counted
        assert not any("generator" in n or "compensator" in n for n in names)


class TestPerturbed:
    def test_weights_restored_after_context(self, lenet):
        before = _snapshot(lenet)
        with perturbed(lenet, LogNormalVariation(0.5), seed=0):
            pass
        after = _snapshot(lenet)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_weights_changed_inside_context(self, lenet):
        before = _snapshot(lenet)
        with perturbed(lenet, LogNormalVariation(0.5), seed=0):
            inside = _snapshot(lenet)
        changed = any(
            not np.allclose(before[n], inside[n])
            for n in before if n.endswith("weight")
        )
        assert changed

    def test_biases_untouched(self, lenet):
        before = _snapshot(lenet)
        with perturbed(lenet, LogNormalVariation(0.9), seed=0):
            inside = _snapshot(lenet)
        for name in before:
            if name.endswith("bias"):
                np.testing.assert_array_equal(before[name], inside[name])

    def test_restores_on_exception(self, lenet):
        before = _snapshot(lenet)
        with pytest.raises(RuntimeError):
            with perturbed(lenet, LogNormalVariation(0.5), seed=0):
                raise RuntimeError("boom")
        after = _snapshot(lenet)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_layer_subset_only(self, lenet):
        layers = [m for _, m in weighted_layers(lenet)]
        before = _snapshot(lenet)
        with perturbed(lenet, LogNormalVariation(0.8), seed=0,
                       layers=layers[2:]):
            inside = _snapshot(lenet)
        # first two conv weights untouched
        np.testing.assert_array_equal(before["net.0.weight"],
                                      inside["net.0.weight"])
        np.testing.assert_array_equal(before["net.3.weight"],
                                      inside["net.3.weight"])
        assert not np.allclose(before["net.7.weight"], inside["net.7.weight"])

    def test_seed_reproducible(self, lenet):
        with perturbed(lenet, LogNormalVariation(0.5), seed=11):
            a = lenet._modules["net"][0].weight.data.copy()
        with perturbed(lenet, LogNormalVariation(0.5), seed=11):
            b = lenet._modules["net"][0].weight.data.copy()
        np.testing.assert_array_equal(a, b)


class TestProtectionMasks:
    def test_protected_entries_stay_nominal(self, lenet):
        name, layer = weighted_layers(lenet)[0]
        nominal = layer.weight.data.copy()
        mask = np.zeros_like(nominal, dtype=bool)
        mask[0] = True  # protect first filter
        injector = VariationInjector(
            lenet, LogNormalVariation(0.9),
            protection_masks={f"{name}.weight": mask},
        )
        with injector.applied(seed=0):
            perturbed_w = layer.weight.data
            np.testing.assert_array_equal(perturbed_w[0], nominal[0])
            assert not np.allclose(perturbed_w[1:], nominal[1:])

    def test_digital_compensation_not_perturbed(self, lenet):
        comp = CompensationPlan({0: 1.0}).apply(lenet, seed=0)
        wrapper = weighted_layers(comp)[0][1]  # the original conv module
        gen_before = None
        for module in comp.modules():
            if getattr(module, "digital", False):
                gen_before = module.weight.data.copy()
                gen_module = module
                break
        with perturbed(comp, LogNormalVariation(0.9), seed=0):
            np.testing.assert_array_equal(gen_module.weight.data, gen_before)


class TestSample:
    def test_sample_does_not_mutate(self, lenet):
        before = _snapshot(lenet)
        injector = VariationInjector(lenet, LogNormalVariation(0.5))
        sampled = injector.sample(seed=0)
        after = _snapshot(lenet)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])
        assert sampled  # non-empty

    def test_sample_matches_applied(self, lenet):
        injector = VariationInjector(lenet, LogNormalVariation(0.5))
        sampled = injector.sample(seed=3)
        with injector.applied(seed=3):
            applied = {
                n: p.data.copy() for n, p in lenet.named_parameters()
                if n.endswith("weight") and "net" in n
            }
        for name, value in sampled.items():
            np.testing.assert_allclose(value, applied[name])


class TestAppliedRestoresOnException:
    def test_injector_applied_restores_on_exception(self, lenet):
        """Weights return to nominal even when the body of
        ``VariationInjector.applied`` raises mid-evaluation."""
        before = _snapshot(lenet)
        injector = VariationInjector(lenet, LogNormalVariation(0.6))
        with pytest.raises(RuntimeError):
            with injector.applied(seed=1):
                raise RuntimeError("forward pass exploded")
        after = _snapshot(lenet)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])


class TestSampleBatch:
    def test_paired_with_applied(self, lenet):
        """Stack slice i is bitwise what ``applied`` installs for the i-th
        spawned stream — the vectorized/loop equivalence contract."""
        from repro.utils.rng import spawn_rngs
        injector = VariationInjector(lenet, LogNormalVariation(0.5))
        stacked = injector.sample_batch(4, seed=99)
        assert stacked  # non-empty
        for i, rng in enumerate(spawn_rngs(99, 4)):
            with injector.applied(rng):
                for name, param in lenet.named_parameters():
                    if name in stacked:
                        np.testing.assert_array_equal(
                            stacked[name][i], param.data
                        )

    def test_does_not_mutate_model(self, lenet):
        before = _snapshot(lenet)
        VariationInjector(lenet, LogNormalVariation(0.5)).sample_batch(3, 0)
        after = _snapshot(lenet)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_respects_protection_masks(self, lenet):
        from repro.variation import weighted_layers
        name, layer = weighted_layers(lenet)[0]
        mask = np.zeros_like(layer.weight.data, dtype=bool)
        mask[0] = True
        injector = VariationInjector(
            lenet, LogNormalVariation(0.9),
            protection_masks={f"{name}.weight": mask},
        )
        stacked = injector.sample_batch(3, seed=0)
        for i in range(3):
            np.testing.assert_array_equal(
                stacked[f"{name}.weight"][i][0], layer.weight.data[0]
            )

    def test_invalid_count_raises(self, lenet):
        injector = VariationInjector(lenet, LogNormalVariation(0.5))
        with pytest.raises(ValueError):
            injector.sample_batch(0, seed=0)


class TestAppliedStack:
    def test_installs_and_restores(self, lenet):
        before = _snapshot(lenet)
        injector = VariationInjector(lenet, LogNormalVariation(0.5))
        stacked = injector.sample_batch(3, seed=5)
        with injector.applied_stack(stacked):
            for name, param in lenet.named_parameters():
                if name in stacked:
                    assert param.data.shape == (3,) + before[name].shape
        after = _snapshot(lenet)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_restores_on_exception(self, lenet):
        before = _snapshot(lenet)
        injector = VariationInjector(lenet, LogNormalVariation(0.5))
        stacked = injector.sample_batch(2, seed=5)
        with pytest.raises(RuntimeError):
            with injector.applied_stack(stacked):
                raise RuntimeError("boom")
        after = _snapshot(lenet)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_shape_mismatch_raises(self, lenet):
        injector = VariationInjector(lenet, LogNormalVariation(0.5))
        stacked = injector.sample_batch(2, seed=5)
        bad = {name: arr[:, :1] for name, arr in stacked.items()}
        with pytest.raises(ValueError):
            with injector.applied_stack(bad):
                pass
