"""Compensation wrappers, plans, overhead accounting and training."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor
from repro.compensation import (
    CompensatedConv2d, CompensatedLinear, CompensationPlan,
    CompensationTrainer, compensation_parameter_count, is_compensated,
    plan_overhead,
)
from repro.data import ArrayDataset
from repro.models import LeNet5
from repro.variation import LogNormalVariation, weighted_layers


class TestCompensatedConv2d:
    def test_output_shape_matches_original(self):
        conv = nn.Conv2d(3, 6, 3, padding=1, seed=0)
        wrapper = CompensatedConv2d(conv, m=2, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8)))
        assert wrapper(x).shape == conv(x).shape

    def test_handles_spatial_shrinking_conv(self):
        # valid conv: output 4x4 from 8x8 -> adaptive pooling path
        conv = nn.Conv2d(2, 4, 5, padding=0, seed=0)
        wrapper = CompensatedConv2d(conv, m=1, seed=0)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 2, 8, 8)))
        assert wrapper(x).shape == (1, 4, 4, 4)

    def test_generator_filter_dimensions(self):
        conv = nn.Conv2d(3, 6, 3, seed=0)
        wrapper = CompensatedConv2d(conv, m=2, seed=0)
        # generator: m filters of 1x1x(l+n); compensator: n of 1x1x(n+m)
        assert wrapper.generator.weight.shape == (2, 9, 1, 1)
        assert wrapper.compensator.weight.shape == (6, 8, 1, 1)

    def test_near_identity_at_init(self):
        conv = nn.Conv2d(3, 6, 3, padding=1, seed=0)
        wrapper = CompensatedConv2d(conv, m=2, seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, 6, 6)))
        y0, y1 = conv(x).data, wrapper(x).data
        rel = np.linalg.norm(y1 - y0) / np.linalg.norm(y0)
        assert rel < 1.0  # correction path is a perturbation, not a rewrite

    def test_digital_flags(self):
        wrapper = CompensatedConv2d(nn.Conv2d(2, 2, 1, seed=0), m=1, seed=0)
        assert wrapper.generator.digital and wrapper.compensator.digital
        assert not getattr(wrapper.original, "digital", False)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            CompensatedConv2d(nn.Conv2d(2, 2, 1, seed=0), m=0)

    def test_compensation_parameter_count(self):
        conv = nn.Conv2d(3, 6, 3, seed=0)
        wrapper = CompensatedConv2d(conv, m=2, seed=0)
        expected = (2 * 9 + 2) + (6 * 8 + 6)  # weights + biases
        assert wrapper.compensation_parameters() == expected


class TestCompensatedLinear:
    def test_shapes(self):
        lin = nn.Linear(10, 4, seed=0)
        wrapper = CompensatedLinear(lin, m=3, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 10)))
        assert wrapper(x).shape == (5, 4)
        assert wrapper.generator.weight.shape == (3, 14)
        assert wrapper.compensator.weight.shape == (4, 7)

    def test_is_compensated_predicate(self):
        lin = nn.Linear(4, 4, seed=0)
        assert is_compensated(CompensatedLinear(lin, m=1, seed=0))
        assert not is_compensated(lin)


class TestCompensationPlan:
    def test_from_sequence_filters_nonpositive(self):
        plan = CompensationPlan.from_sequence([0.5, 0.0, -1.0, 0.25])
        assert plan.ratios == {0: 0.5, 3: 0.25}
        assert plan.active_layers() == [0, 3]
        assert plan.num_compensated == 2

    def test_apply_preserves_source_model(self, lenet):
        before = {n: p.data.copy() for n, p in lenet.named_parameters()}
        CompensationPlan({0: 0.5}).apply(lenet, seed=0)
        for name, param in lenet.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
        assert compensation_parameter_count(lenet) == 0

    def test_apply_splices_wrapper(self, lenet):
        comp = CompensationPlan({0: 1.0, 1: 0.5}).apply(lenet, seed=0)
        wrappers = [m for m in comp.modules() if is_compensated(m)]
        assert len(wrappers) == 2

    def test_apply_copies_weights(self, lenet):
        comp = CompensationPlan({0: 1.0}).apply(lenet, seed=0)
        src = weighted_layers(lenet)[0][1].weight
        dst = weighted_layers(comp)[0][1].weight
        np.testing.assert_array_equal(src.data, dst.data)
        assert src is not dst

    def test_forward_equivalence_of_uncompensated_layers(self, lenet):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 16, 16)))
        plan = CompensationPlan({})
        clone = plan.apply(lenet, seed=0)
        np.testing.assert_allclose(clone(x).data, lenet(x).data)

    def test_out_of_range_layer_raises(self, lenet):
        with pytest.raises(IndexError):
            CompensationPlan({99: 0.5}).apply(lenet, seed=0)

    def test_filters_for_minimum_one(self, lenet):
        plan = CompensationPlan()
        conv = weighted_layers(lenet)[0][1]
        assert plan.filters_for(conv, 0.01) == 1

    def test_overhead_positive_and_small(self, lenet):
        comp = CompensationPlan({0: 0.5}).apply(lenet, seed=0)
        overhead = plan_overhead(lenet, comp)
        assert 0 < overhead < 0.2

    def test_overhead_grows_with_ratio(self, lenet):
        small = CompensationPlan({0: 0.25}).apply(lenet, seed=0)
        large = CompensationPlan({0: 1.0}).apply(lenet, seed=0)
        assert plan_overhead(lenet, large) > plan_overhead(lenet, small)


class TestCompensationTrainer:
    def _tiny_data(self):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(40, 1, 16, 16))
        labels = rng.integers(0, 10, size=40)
        return ArrayDataset(images, labels)

    def test_requires_compensated_model(self, lenet):
        with pytest.raises(ValueError):
            CompensationTrainer(lenet, LogNormalVariation(0.3))

    def test_original_weights_frozen_and_unchanged(self, lenet):
        comp = CompensationPlan({0: 0.5}).apply(lenet, seed=0)
        original_layer = weighted_layers(comp)[0][1]
        before = original_layer.weight.data.copy()
        trainer = CompensationTrainer(comp, LogNormalVariation(0.3), seed=0)
        trainer.fit(self._tiny_data(), epochs=1, batch_size=8)
        np.testing.assert_array_equal(original_layer.weight.data, before)

    def test_compensation_weights_updated(self, lenet):
        comp = CompensationPlan({0: 0.5}).apply(lenet, seed=0)
        wrapper = next(m for m in comp.modules() if is_compensated(m))
        before = wrapper.generator.weight.data.copy()
        trainer = CompensationTrainer(comp, LogNormalVariation(0.3), seed=0)
        trainer.fit(self._tiny_data(), epochs=1, batch_size=8)
        assert not np.allclose(wrapper.generator.weight.data, before)

    def test_loss_decreases(self, tiny_train):
        model = LeNet5(num_classes=10, in_channels=1, input_size=16,
                       width_multiplier=0.5, seed=0)
        comp = CompensationPlan({0: 1.0}).apply(model, seed=0)
        trainer = CompensationTrainer(comp, LogNormalVariation(0.2),
                                      lr=3e-3, seed=0)
        history = trainer.fit(tiny_train, epochs=4, batch_size=16)
        assert history.loss[-1] < history.loss[0]
