"""Conductance mapping: round-trip exactness and physical constraints."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import ConductanceMapper


class TestEncodeDecode:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_roundtrip_exact(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(6, 7))
        mapper = ConductanceMapper()
        g_pos, g_neg, scale = mapper.encode(w)
        decoded = mapper.decode(g_pos, g_neg, scale)
        np.testing.assert_allclose(decoded, w, atol=1e-12 * max(1, np.abs(w).max()))

    def test_conductances_within_window(self):
        rng = np.random.default_rng(0)
        mapper = ConductanceMapper(g_min=1e-6, g_max=50e-6)
        g_pos, g_neg, _ = mapper.encode(rng.normal(size=(4, 4)))
        for g in (g_pos, g_neg):
            assert (g >= 1e-6 - 1e-18).all()
            assert (g <= 50e-6 + 1e-18).all()

    def test_differential_one_side_at_gmin(self):
        """For any weight, at least one of (G+, G-) sits at g_min — the
        standard one-sided differential coding."""
        rng = np.random.default_rng(1)
        mapper = ConductanceMapper()
        g_pos, g_neg, _ = mapper.encode(rng.normal(size=(5, 5)))
        at_min = (np.isclose(g_pos, mapper.g_min) |
                  np.isclose(g_neg, mapper.g_min))
        assert at_min.all()

    def test_saturation_beyond_scale(self):
        mapper = ConductanceMapper(w_scale=1.0)
        g_pos, g_neg, scale = mapper.encode(np.array([[5.0]]))
        decoded = mapper.decode(g_pos, g_neg, scale)
        assert decoded[0, 0] == pytest.approx(1.0)  # clipped to scale

    def test_zero_matrix_scale_fallback(self):
        mapper = ConductanceMapper()
        g_pos, g_neg, scale = mapper.encode(np.zeros((2, 2)))
        assert scale == 1.0
        np.testing.assert_allclose(mapper.decode(g_pos, g_neg, scale), 0.0)

    def test_explicit_scale_used(self):
        mapper = ConductanceMapper(w_scale=4.0)
        assert mapper.scale_for(np.array([[1.0]])) == 4.0

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            ConductanceMapper(g_min=2.0, g_max=1.0)

    def test_clip(self):
        mapper = ConductanceMapper(g_min=1.0, g_max=2.0)
        out = mapper.clip(np.array([0.5, 1.5, 3.0]))
        np.testing.assert_allclose(out, [1.0, 1.5, 2.0])
