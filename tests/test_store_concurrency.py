"""Two real runner processes drain one store: exactly-once execution.

The lease-based claim is the only coordination between runners — no
process-level locks. This test launches two OS processes that drain the
same sqlite store concurrently and proves that

- every submitted job finishes (``done``),
- no job ran twice (``attempts == 1`` on every row — a reclaimed or
  re-executed job would show 2), and
- each stored result is bitwise-identical to a direct in-process
  ``execute()`` of the same plan.

The worker subprocesses install the same miniature-dataset factory the
submitting process uses, so both sides materialize identical plans and
agree on every fingerprint.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.data import synth_mnist
from repro.evaluation.executor import execute
from repro.store import JobRequest, materialize, ResultStore


def _tiny_factory():
    return synth_mnist(train_per_class=6, test_per_class=3)


@pytest.fixture(autouse=True)
def tiny_datasets(monkeypatch):
    from repro.store import jobs as store_jobs

    monkeypatch.setitem(store_jobs.DATASET_FACTORIES, "synth_mnist",
                        _tiny_factory)


# Run inside each worker subprocess. Installs the identical tiny-dataset
# factory (a monkeypatch in the parent is invisible here) before
# draining, so fingerprints re-verify against the submitted ones.
_WORKER_SCRIPT = """
import sys

from repro.data import synth_mnist
from repro.store import ResultStore
from repro.store import jobs as store_jobs
from repro.store.runner import drain

store_jobs.DATASET_FACTORIES["synth_mnist"] = (
    lambda: synth_mnist(train_per_class=6, test_per_class=3)
)
path, owner = sys.argv[1], sys.argv[2]
with ResultStore(path) as store:
    stats = drain(store, owner=owner, lease_seconds=30.0)
print(f"{owner} done={stats.done} failed={stats.failed}")
"""


def _worker_env():
    import repro

    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    return env


def test_two_runner_processes_execute_every_job_exactly_once(tmp_path):
    path = str(tmp_path / "store.sqlite")
    sigmas = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    materialized = []
    with ResultStore(path) as store:
        for sigma in sigmas:
            request = JobRequest(
                model="mlp",
                dataset="synth_mnist",
                variation={"kind": "lognormal", "sigma": sigma},
                n_samples=4,
                seed=11,
                chunk_samples=2,
            )
            m = materialize(request)
            outcome = store.submit(m.fingerprint, m.request.to_dict())
            assert outcome.created
            materialized.append(m)

    env = _worker_env()
    workers = [
        subprocess.Popen(
            [sys.executable, "-c", _WORKER_SCRIPT, path, owner],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        for owner in ("runner-a", "runner-b")
    ]
    for proc in workers:
        stdout, stderr = proc.communicate(timeout=110)
        assert proc.returncode == 0, stderr
        assert "failed=0" in stdout, stdout

    with ResultStore(path) as store:
        rows = store.jobs()
        assert len(rows) == len(sigmas)
        assert all(row.state == "done" for row in rows)
        # Exactly-once: a double execution (or a reclaimed lease) would
        # leave attempts == 2 on some row.
        assert [row.attempts for row in rows] == [1] * len(sigmas)
        for m in materialized:
            direct = execute(m.plan, m.model, m.dataset)
            stored = store.result(m.fingerprint)
            assert stored["accuracies"] == \
                [float(a) for a in direct.accuracies]
