"""Property-based tests on the autograd engine's algebraic identities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor


def _arrays(shape_strategy):
    return shape_strategy.flatmap(
        lambda shape: st.integers(0, 2**31 - 1).map(
            lambda seed: np.random.default_rng(seed).normal(size=shape)
        )
    )


SMALL_SHAPES = st.tuples(st.integers(1, 4), st.integers(1, 4))


class TestAlgebraicIdentities:
    @settings(max_examples=25, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_add_commutative(self, a):
        x, y = Tensor(a), Tensor(a * 0.5 + 1)
        np.testing.assert_allclose((x + y).data, (y + x).data)

    @settings(max_examples=25, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_mul_distributes_over_add(self, a):
        x = Tensor(a)
        y = Tensor(a * 2 - 1)
        z = Tensor(np.ones_like(a) * 0.3)
        lhs = (x * (y + z)).data
        rhs = (x * y + x * z).data
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_transpose_involution(self, a):
        x = Tensor(a)
        np.testing.assert_allclose(x.T.T.data, a)

    @settings(max_examples=25, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_sum_equals_mean_times_size(self, a):
        x = Tensor(a)
        assert x.sum().item() == pytest.approx(x.mean().item() * a.size)

    @settings(max_examples=25, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_exp_log_roundtrip_positive(self, a):
        x = Tensor(np.abs(a) + 0.1)
        np.testing.assert_allclose(x.log().exp().data, x.data, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_relu_idempotent(self, a):
        x = Tensor(a)
        np.testing.assert_allclose(x.relu().relu().data, x.relu().data)

    @settings(max_examples=25, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_abs_nonnegative(self, a):
        assert (Tensor(a).abs().data >= 0).all()


class TestGradientLinearity:
    """Backward is linear in the output gradient: grad(c*g) = c*grad(g)."""

    @settings(max_examples=20, deadline=None)
    @given(_arrays(SMALL_SHAPES), st.floats(0.5, 3.0))
    def test_scaling_output_grad_scales_input_grad(self, a, c):
        def grad_for(scale):
            x = Tensor(a, requires_grad=True)
            y = (x * x).sum()
            y.backward(np.asarray(scale))
            return x.grad

        g1 = grad_for(1.0)
        gc = grad_for(c)
        np.testing.assert_allclose(gc, c * g1, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_grad_of_sum_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))

    @settings(max_examples=20, deadline=None)
    @given(_arrays(SMALL_SHAPES))
    def test_chain_rule_scalar_scale(self, a):
        # d/dx sum(3x) == 3
        x = Tensor(a, requires_grad=True)
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(a, 3.0))


class TestMatmulProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matmul_associative(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4, 5)))
        c = Tensor(rng.normal(size=(5, 2)))
        lhs = ((a @ b) @ c).data
        rhs = (a @ (b @ c)).data
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matmul_grad_matches_transpose_formula(self, seed):
        rng = np.random.default_rng(seed)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        g = rng.normal(size=(3, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).backward(g)
        np.testing.assert_allclose(a.grad, g @ b_data.T, atol=1e-10)
        np.testing.assert_allclose(b.grad, a_data.T @ g, atol=1e-10)
