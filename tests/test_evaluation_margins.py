"""Margin analysis: the quantity error suppression protects."""

import numpy as np
import pytest

import repro.nn as nn
from repro.evaluation import (
    logit_shift_under_variation, margin_report,
)
from repro.variation import LogNormalVariation, NoVariation


class TestMarginReport:
    def test_margins_nonnegative(self, mlp, blob_dataset):
        report = margin_report(mlp, blob_dataset)
        assert (report.margins >= 0).all()

    def test_margin_count_matches_correct(self, mlp, blob_dataset):
        report = margin_report(mlp, blob_dataset)
        expected = int(round(report.clean_accuracy * len(blob_dataset)))
        assert report.margins.size == expected

    def test_fraction_below_monotone(self, mlp, blob_dataset):
        report = margin_report(mlp, blob_dataset)
        assert report.fraction_below(0.0) <= report.fraction_below(1e9)
        assert report.fraction_below(1e9) == 1.0 or report.margins.size == 0

    def test_confident_model_large_margins(self, blob_dataset):
        """Train to convergence: margins grow well above zero."""
        from repro.core import Trainer
        from repro.models import MLP
        from repro.optim import Adam

        model = MLP(4, [16], 3, flatten_input=True, seed=0)
        Trainer(model, Adam(list(model.parameters()), lr=0.01), seed=0).fit(
            blob_dataset, epochs=30, batch_size=16
        )
        report = margin_report(model, blob_dataset)
        assert report.clean_accuracy > 0.9
        assert report.median > 1.0

    def test_restores_training_mode(self, mlp, blob_dataset):
        mlp.train()
        margin_report(mlp, blob_dataset)
        assert mlp.training


class TestLogitShift:
    def test_no_variation_zero_shift(self, mlp, blob_dataset):
        shift = logit_shift_under_variation(
            mlp, blob_dataset, NoVariation(), n_samples=2, seed=0
        )
        assert shift == pytest.approx(0.0)

    def test_shift_grows_with_sigma(self, mlp, blob_dataset):
        small = logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.1), n_samples=4, seed=0
        )
        large = logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.6), n_samples=4, seed=0
        )
        assert large > small > 0

    def test_weights_restored(self, mlp, blob_dataset):
        before = {n: p.data.copy() for n, p in mlp.named_parameters()}
        logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.5), n_samples=2, seed=0
        )
        for name, param in mlp.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
