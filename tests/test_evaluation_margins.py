"""Margin analysis: the quantity error suppression protects."""

import numpy as np
import pytest

import repro.nn as nn
from repro.evaluation import (
    logit_shift_under_variation, margin_report,
)
from repro.variation import LogNormalVariation, NoVariation


class TestMarginReport:
    def test_margins_nonnegative(self, mlp, blob_dataset):
        report = margin_report(mlp, blob_dataset)
        assert (report.margins >= 0).all()

    def test_margin_count_matches_correct(self, mlp, blob_dataset):
        report = margin_report(mlp, blob_dataset)
        expected = int(round(report.clean_accuracy * len(blob_dataset)))
        assert report.margins.size == expected

    def test_fraction_below_monotone(self, mlp, blob_dataset):
        report = margin_report(mlp, blob_dataset)
        assert report.fraction_below(0.0) <= report.fraction_below(1e9)
        assert report.fraction_below(1e9) == 1.0 or report.margins.size == 0

    def test_confident_model_large_margins(self, blob_dataset):
        """Train to convergence: margins grow well above zero."""
        from repro.core import Trainer
        from repro.models import MLP
        from repro.optim import Adam

        model = MLP(4, [16], 3, flatten_input=True, seed=0)
        Trainer(model, Adam(list(model.parameters()), lr=0.01), seed=0).fit(
            blob_dataset, epochs=30, batch_size=16
        )
        report = margin_report(model, blob_dataset)
        assert report.clean_accuracy > 0.9
        assert report.median > 1.0

    def test_restores_training_mode(self, mlp, blob_dataset):
        mlp.train()
        margin_report(mlp, blob_dataset)
        assert mlp.training

    def test_empty_margins_edge_cases(self):
        """An all-wrong model yields an empty margin set; every statistic
        must degrade gracefully instead of raising on empty arrays."""
        from repro.evaluation import MarginReport

        report = MarginReport(
            margins=np.zeros(0, dtype=np.float64), clean_accuracy=0.0
        )
        assert report.mean == 0.0
        assert report.median == 0.0
        assert report.fraction_below(1.0) == 0.0
        assert report.mean_logit_shift is None

    def test_margins_match_manual_top2_gap(self, mlp, blob_dataset):
        from repro.autograd import no_grad, Tensor

        report = margin_report(mlp, blob_dataset)
        mlp.eval()
        with no_grad():
            logits = mlp(Tensor(blob_dataset.images)).data
        hit = logits.argmax(axis=1) == blob_dataset.labels
        top2 = np.sort(logits, axis=1)[:, -2:]
        expected = (top2[:, 1] - top2[:, 0])[hit]
        np.testing.assert_allclose(report.margins, expected)

    def test_batching_does_not_change_report(self, mlp, blob_dataset):
        whole = margin_report(mlp, blob_dataset, batch_size=len(blob_dataset))
        batched = margin_report(mlp, blob_dataset, batch_size=3)
        assert whole.clean_accuracy == batched.clean_accuracy
        np.testing.assert_array_equal(whole.margins, batched.margins)


class TestLogitShift:
    def test_shift_is_deterministic(self, mlp, blob_dataset):
        kwargs = dict(n_samples=4, seed=6)
        first = logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.4), **kwargs
        )
        second = logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.4), **kwargs
        )
        assert first == second

    def test_restores_training_mode(self, mlp, blob_dataset):
        mlp.train()
        logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.2), n_samples=2, seed=0
        )
        assert mlp.training
    def test_no_variation_zero_shift(self, mlp, blob_dataset):
        shift = logit_shift_under_variation(
            mlp, blob_dataset, NoVariation(), n_samples=2, seed=0
        )
        assert shift == pytest.approx(0.0)

    def test_shift_grows_with_sigma(self, mlp, blob_dataset):
        small = logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.1), n_samples=4, seed=0
        )
        large = logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.6), n_samples=4, seed=0
        )
        assert large > small > 0

    def test_weights_restored(self, mlp, blob_dataset):
        before = {n: p.data.copy() for n, p in mlp.named_parameters()}
        logit_shift_under_variation(
            mlp, blob_dataset, LogNormalVariation(0.5), n_samples=2, seed=0
        )
        for name, param in mlp.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
