"""Evaluation: accuracy, Monte-Carlo protocol, layer sweeps, tracing."""

import json

import numpy as np
import pytest

import repro.nn as nn
from repro.data import ArrayDataset
from repro.evaluation import (
    ErrorPropagationTracer, MonteCarloEvaluator, accuracy, layer_sweep,
    recovery_ratio, select_candidates,
)
from repro.models import MLP
from repro.variation import LogNormalVariation, NoVariation, weighted_layers


class _ConstantModel(nn.Module):
    """Predicts a fixed class for everything (accuracy is exactly the
    fraction of that label)."""

    def __init__(self, num_classes, winner):
        super().__init__()
        self.logits = np.eye(num_classes)[winner] * 10.0

    def forward(self, x):
        from repro.autograd import Tensor
        n = x.shape[0]
        return Tensor(np.tile(self.logits, (n, 1)))


def _dataset(n=30, classes=3):
    rng = np.random.default_rng(0)
    return ArrayDataset(rng.normal(size=(n, 1, 2, 2)),
                        np.arange(n) % classes)


class TestAccuracy:
    def test_constant_model_fraction(self):
        ds = _dataset(30, 3)
        model = _ConstantModel(3, winner=0)
        assert accuracy(model, ds) == pytest.approx(10 / 30)

    def test_restores_training_mode(self, mlp, blob_dataset):
        mlp.train()
        accuracy(mlp, blob_dataset)
        assert mlp.training

    def test_recovery_ratio(self):
        assert recovery_ratio(0.95, 1.0) == pytest.approx(0.95)
        with pytest.raises(ValueError):
            recovery_ratio(0.5, 0.0)


class TestMonteCarlo:
    def test_no_variation_single_sample(self, mlp, blob_dataset):
        ev = MonteCarloEvaluator(blob_dataset, n_samples=50, seed=0)
        result = ev.evaluate(mlp, NoVariation())
        assert len(result.accuracies) == 1
        assert result.std == 0.0

    def test_sample_count(self, mlp, blob_dataset):
        ev = MonteCarloEvaluator(blob_dataset, n_samples=7, seed=0)
        result = ev.evaluate(mlp, LogNormalVariation(0.3))
        assert len(result.accuracies) == 7

    def test_deterministic_given_seed(self, mlp, blob_dataset):
        ev1 = MonteCarloEvaluator(blob_dataset, n_samples=5, seed=42)
        ev2 = MonteCarloEvaluator(blob_dataset, n_samples=5, seed=42)
        r1 = ev1.evaluate(mlp, LogNormalVariation(0.4))
        r2 = ev2.evaluate(mlp, LogNormalVariation(0.4))
        np.testing.assert_allclose(r1.accuracies, r2.accuracies)

    def test_weights_restored(self, mlp, blob_dataset):
        before = {n: p.data.copy() for n, p in mlp.named_parameters()}
        ev = MonteCarloEvaluator(blob_dataset, n_samples=3, seed=0)
        ev.evaluate(mlp, LogNormalVariation(0.5))
        for name, param in mlp.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_stats_consistent(self):
        from repro.evaluation.montecarlo import MCResult
        r = MCResult([0.5, 0.7, 0.9])
        assert r.mean == pytest.approx(0.7)
        assert r.min == 0.5 and r.max == 0.9

    def test_sweep_sigma_grid(self, mlp, blob_dataset):
        ev = MonteCarloEvaluator(blob_dataset, n_samples=3, seed=0)
        results = ev.sweep_sigma(mlp, LogNormalVariation(0.5), [0.1, 0.3])
        assert len(results) == 2

    def test_sweep_requires_positive_magnitude(self, mlp, blob_dataset):
        ev = MonteCarloEvaluator(blob_dataset, n_samples=2, seed=0)
        with pytest.raises(ValueError):
            ev.sweep_sigma(mlp, NoVariation(), [0.1])

    def test_invalid_n_samples(self, blob_dataset):
        with pytest.raises(ValueError):
            MonteCarloEvaluator(blob_dataset, n_samples=0)


class TestLayerSweep:
    def test_sweep_length_matches_layers(self, mlp, blob_dataset):
        ev = MonteCarloEvaluator(blob_dataset, n_samples=2, seed=0)
        results = layer_sweep(mlp, LogNormalVariation(0.3), ev)
        assert [i for i, _ in results] == [1, 2]

    def test_candidates_empty_for_robust_model(self, blob_dataset):
        """With essentially zero variation every tail injection passes the
        threshold, so no candidates are selected."""
        model = MLP(4, [8], 3, flatten_input=True, seed=0)
        ev = MonteCarloEvaluator(blob_dataset, n_samples=2, seed=0)
        original = accuracy(model, blob_dataset)
        candidates = select_candidates(
            model, LogNormalVariation(1e-4), ev, original
        )
        assert candidates == []

    def test_candidates_all_for_fragile_threshold(self, mlp, blob_dataset):
        """Impossible threshold (>100% of original) marks every layer."""
        ev = MonteCarloEvaluator(blob_dataset, n_samples=2, seed=0)
        candidates = select_candidates(
            mlp, LogNormalVariation(0.3), ev,
            original_accuracy=1.0, threshold=2.0,
        )
        assert candidates == [0, 1]

    def test_max_candidates_cap(self, mlp, blob_dataset):
        ev = MonteCarloEvaluator(blob_dataset, n_samples=2, seed=0)
        candidates = select_candidates(
            mlp, LogNormalVariation(0.3), ev,
            original_accuracy=1.0, threshold=2.0, max_candidates=1,
        )
        assert candidates == [0]


class TestTracer:
    def test_deviation_per_layer_count(self, mlp):
        tracer = ErrorPropagationTracer(mlp)
        x = np.random.default_rng(0).normal(size=(4, 1, 2, 2))
        devs = tracer.trace(x, LogNormalVariation(0.3), seed=0)
        assert len(devs) == 2
        assert all(d.relative_error >= 0 for d in devs)

    def test_zero_variation_zero_error(self, mlp):
        tracer = ErrorPropagationTracer(mlp)
        x = np.random.default_rng(0).normal(size=(4, 1, 2, 2))
        devs = tracer.trace(x, LogNormalVariation(0.0), seed=0)
        assert all(d.relative_error == pytest.approx(0.0) for d in devs)

    def test_amplification_in_expansive_network(self):
        """A deep net with norm >> 1 weights amplifies errors with depth;
        a contractive one attenuates relative error growth."""
        import repro.nn as nn
        from repro.nn import init

        def build(gain):
            layers = []
            for i in range(4):
                lin = nn.Linear(16, 16, bias=False, seed=i)
                lin.weight.data = init.orthogonal(
                    (16, 16), np.random.default_rng(i), gain=gain
                )
                layers += [lin, nn.ReLU()]
            return nn.Sequential(*layers)

        x = np.random.default_rng(5).normal(size=(8, 16))
        big = ErrorPropagationTracer(build(3.0)).amplification_profile(
            x, LogNormalVariation(0.3), n_samples=4, seed=0
        )
        small = ErrorPropagationTracer(build(0.9)).amplification_profile(
            x, LogNormalVariation(0.3), n_samples=4, seed=0
        )
        # Relative error at the last layer grows more in the expansive net.
        assert big[-1] > small[-1]

    def test_forward_hooks_removed(self, mlp):
        tracer = ErrorPropagationTracer(mlp)
        x = np.random.default_rng(0).normal(size=(2, 1, 2, 2))
        tracer.trace(x, LogNormalVariation(0.2), seed=0)
        # forward must be back to the class implementation (unhooked)
        layer = weighted_layers(mlp)[0][1]
        assert layer.forward.__qualname__.startswith("Linear")


class TestMCResultValidation:
    def test_empty_result_statistics_raise(self):
        from repro.evaluation.montecarlo import MCResult
        empty = MCResult()
        for stat in ("mean", "std", "min", "max"):
            with pytest.raises(ValueError):
                getattr(empty, stat)

    def test_empty_result_repr_safe(self):
        from repro.evaluation.montecarlo import MCResult
        assert "empty" in repr(MCResult())


class TestMCResultSerialization:
    def test_round_trip_through_json_is_lossless(self):
        from repro.evaluation.montecarlo import MCResult
        original = MCResult(
            accuracies=[np.float64(0.625), 0.75, np.float32(0.5)],
            stopped_early=True,
            confidence=0.99,
            ci_method="clt",
        )
        payload = json.loads(json.dumps(original.to_dict()))
        restored = MCResult.from_dict(payload)
        assert restored.accuracies == [float(a) for a in original.accuracies]
        assert restored.stopped_early is True
        assert restored.confidence == 0.99
        assert restored.ci_method == "clt"
        assert restored.ci_half_width == original.ci_half_width
        # Idempotent: re-serializing the restored result is a fixpoint.
        assert restored.to_dict() == payload

    def test_empty_result_round_trips(self):
        from repro.evaluation.montecarlo import MCResult
        restored = MCResult.from_dict(MCResult().to_dict())
        assert restored.accuracies == []
        assert restored.n_samples_used == 0

    def test_unknown_fields_rejected(self):
        from repro.evaluation.montecarlo import MCResult
        with pytest.raises(ValueError, match="unknown MCResult fields"):
            MCResult.from_dict({"accuracies": [], "surprise": 1})


class TestVectorizedEngine:
    """Paired-seed equivalence of the vectorized engine with the loop."""

    def test_mlp_matches_loop(self, mlp, blob_dataset):
        loop = MonteCarloEvaluator(blob_dataset, n_samples=9, seed=11,
                                   vectorized=False)
        vec = MonteCarloEvaluator(blob_dataset, n_samples=9, seed=11,
                                  vectorized=True, sample_chunk=4)
        r_loop = loop.evaluate(mlp, LogNormalVariation(0.5))
        r_vec = vec.evaluate(mlp, LogNormalVariation(0.5))
        assert r_vec.accuracies == r_loop.accuracies

    def test_lenet_matches_loop(self, lenet, tiny_test):
        loop = MonteCarloEvaluator(tiny_test, n_samples=5, seed=3,
                                   vectorized=False)
        vec = MonteCarloEvaluator(tiny_test, n_samples=5, seed=3,
                                  vectorized=True, sample_chunk=2)
        r_loop = loop.evaluate(lenet, LogNormalVariation(0.4))
        r_vec = vec.evaluate(lenet, LogNormalVariation(0.4))
        assert r_vec.accuracies == r_loop.accuracies

    def test_layer_subset_and_masks_match_loop(self, lenet, tiny_test):
        layers = [m for _, m in weighted_layers(lenet)][2:]
        name = weighted_layers(lenet)[2][0]
        mask = np.zeros_like(weighted_layers(lenet)[2][1].weight.data,
                             dtype=bool)
        mask[0] = True
        masks = {f"{name}.weight": mask}
        loop = MonteCarloEvaluator(tiny_test, n_samples=4, seed=5,
                                   vectorized=False)
        vec = MonteCarloEvaluator(tiny_test, n_samples=4, seed=5,
                                  vectorized=True)
        r_loop = loop.evaluate(lenet, LogNormalVariation(0.6), layers=layers,
                               protection_masks=masks)
        r_vec = vec.evaluate(lenet, LogNormalVariation(0.6), layers=layers,
                             protection_masks=masks)
        assert r_vec.accuracies == r_loop.accuracies

    def test_weights_restored_after_vectorized(self, lenet, tiny_test):
        before = {n: p.data.copy() for n, p in lenet.named_parameters()}
        vec = MonteCarloEvaluator(tiny_test, n_samples=3, seed=0,
                                  vectorized=True)
        vec.evaluate(lenet, LogNormalVariation(0.5))
        for name, param in lenet.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_empty_layer_subset_replicates_nominal(self, mlp, blob_dataset):
        vec = MonteCarloEvaluator(blob_dataset, n_samples=4, seed=0,
                                  vectorized=True)
        result = vec.evaluate(mlp, LogNormalVariation(0.5), layers=[])
        clean = accuracy(mlp, blob_dataset)
        assert result.accuracies == [clean] * 4

    def test_unsupported_model_falls_back_to_loop(self, blob_dataset):
        """A model without sample-aware kernels (here: a batch-axis
        softmax) silently uses the reference loop under vectorized=True."""
        import repro.nn as nn
        from repro.evaluation import supports_sample_axis
        model = nn.Sequential(nn.Flatten(), nn.Linear(4, 8, seed=0),
                              nn.ReLU(), nn.Linear(8, 3, seed=1),
                              nn.Softmax(axis=1))
        model.eval()
        assert not supports_sample_axis(model)
        loop = MonteCarloEvaluator(blob_dataset, n_samples=3, seed=2,
                                   vectorized=False)
        vec = MonteCarloEvaluator(blob_dataset, n_samples=3, seed=2,
                                  vectorized=True)
        r_loop = loop.evaluate(model, LogNormalVariation(0.3))
        r_vec = vec.evaluate(model, LogNormalVariation(0.3))
        assert r_vec.accuracies == r_loop.accuracies

    def test_batchnorm_model_rides_vectorized_in_eval(self, blob_dataset):
        """Eval-mode batch norm is an affine fold with sample-aware
        broadcasting, so BN models now qualify for the vectorized engine —
        and stay bitwise-paired with the reference loop. In training mode
        the batch statistics are not stacked-safe, so support is off."""
        import repro.nn as nn
        from repro.evaluation import supports_sample_axis
        from repro.nn.batchnorm import BatchNorm1d
        model = nn.Sequential(nn.Flatten(), nn.Linear(4, 8, seed=0),
                              BatchNorm1d(8), nn.ReLU(),
                              nn.Linear(8, 3, seed=1))
        # Non-trivial running stats so the fold actually does something.
        bn = model[2]
        rng = np.random.default_rng(0)
        bn.set_buffer("running_mean", rng.normal(size=8))
        bn.set_buffer("running_var", 0.5 + rng.random(8))
        model.train()
        assert not supports_sample_axis(model)
        model.eval()
        assert supports_sample_axis(model)
        loop = MonteCarloEvaluator(blob_dataset, n_samples=4, seed=2,
                                   vectorized=False)
        vec = MonteCarloEvaluator(blob_dataset, n_samples=4, seed=2,
                                  vectorized=True)
        r_loop = loop.evaluate(model, LogNormalVariation(0.4))
        r_vec = vec.evaluate(model, LogNormalVariation(0.4))
        assert r_vec.accuracies == r_loop.accuracies

    def test_supports_sample_axis_whitelist(self, mlp, lenet):
        from repro.evaluation import supports_sample_axis
        assert supports_sample_axis(mlp)
        assert supports_sample_axis(lenet)

    def test_vgg_batchnorm_rides_vectorized(self, tiny_test):
        """The VGG batch_norm path (BatchNorm2d, channel-major stacked
        (S, C, N, H, W) activations) is vectorized-eligible in eval mode
        and stays bitwise-paired with the reference loop."""
        from repro.evaluation import supports_sample_axis
        from repro.models import VGG
        model = VGG(config=[4, "M", 8], num_classes=10, in_channels=1,
                    input_size=16, width=1.0, classifier_width=16,
                    batch_norm=True, seed=0)
        from repro.nn.batchnorm import BatchNorm2d
        bns = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
        assert bns, "batch_norm=True must insert BatchNorm2d layers"
        rng = np.random.default_rng(3)
        for bn in bns:
            bn.set_buffer("running_mean", rng.normal(size=bn.num_features))
            bn.set_buffer("running_var", 0.5 + rng.random(bn.num_features))
        model.eval()
        assert supports_sample_axis(model)
        loop = MonteCarloEvaluator(tiny_test, n_samples=3, seed=6,
                                   vectorized=False)
        vec = MonteCarloEvaluator(tiny_test, n_samples=3, seed=6,
                                  vectorized=True, sample_chunk=2)
        from repro.variation import LevelQuantization
        spec = LogNormalVariation(0.5) | LevelQuantization(4)
        r_loop = loop.evaluate(model, spec)
        r_vec = vec.evaluate(model, spec)
        assert r_vec.accuracies == r_loop.accuracies


class TestProcessPoolEngine:
    def test_pool_matches_loop(self, mlp, blob_dataset):
        loop = MonteCarloEvaluator(blob_dataset, n_samples=5, seed=8,
                                   vectorized=False)
        pool = MonteCarloEvaluator(blob_dataset, n_samples=5, seed=8,
                                   vectorized=False, n_workers=2)
        r_loop = loop.evaluate(mlp, LogNormalVariation(0.5))
        r_pool = pool.evaluate(mlp, LogNormalVariation(0.5))
        assert r_pool.accuracies == r_loop.accuracies

    def test_pool_preserves_sample_order(self, mlp, blob_dataset):
        pool = MonteCarloEvaluator(blob_dataset, n_samples=5, seed=8,
                                   vectorized=False, n_workers=3)
        a = pool.evaluate(mlp, LogNormalVariation(0.5))
        b = pool.evaluate(mlp, LogNormalVariation(0.5))
        assert a.accuracies == b.accuracies

    def test_invalid_workers_raise(self, blob_dataset):
        with pytest.raises(ValueError):
            MonteCarloEvaluator(blob_dataset, n_workers=-1)


class TestSweepSigmaThreading:
    def test_sweep_forwards_layers_and_masks(self, lenet, tiny_test):
        """sweep_sigma must produce the same results as calling evaluate
        per sigma with the same layer subset and protection masks."""
        layers = [m for _, m in weighted_layers(lenet)][1:]
        name = weighted_layers(lenet)[1][0]
        mask = np.zeros_like(weighted_layers(lenet)[1][1].weight.data,
                             dtype=bool)
        mask[0] = True
        masks = {f"{name}.weight": mask}
        ev = MonteCarloEvaluator(tiny_test, n_samples=3, seed=4)
        swept = ev.sweep_sigma(lenet, LogNormalVariation(0.5), [0.2, 0.4],
                               layers=layers, protection_masks=masks)
        for sigma, result in zip([0.2, 0.4], swept):
            direct = ev.evaluate(lenet, LogNormalVariation(sigma),
                                 layers=layers, protection_masks=masks)
            assert result.accuracies == direct.accuracies

    def test_prefix_layer_subset_matches_loop(self, lenet, tiny_test):
        """Stacked activations flowing into later *unstacked* layers (a
        prefix subset: only conv1 varied) must work and pair with the
        loop — plain-weight kernels broadcast over the sample axis."""
        first = [weighted_layers(lenet)[0][1]]
        loop = MonteCarloEvaluator(tiny_test, n_samples=4, seed=6,
                                   vectorized=False)
        vec = MonteCarloEvaluator(tiny_test, n_samples=4, seed=6,
                                  vectorized=True)
        r_loop = loop.evaluate(lenet, LogNormalVariation(0.5), layers=first)
        r_vec = vec.evaluate(lenet, LogNormalVariation(0.5), layers=first)
        assert r_vec.accuracies == r_loop.accuracies

    def test_middle_layer_subset_matches_loop(self, mlp, blob_dataset):
        middle = [weighted_layers(mlp)[0][1]]  # first linear only
        loop = MonteCarloEvaluator(blob_dataset, n_samples=4, seed=6,
                                   vectorized=False)
        vec = MonteCarloEvaluator(blob_dataset, n_samples=4, seed=6,
                                  vectorized=True)
        r_loop = loop.evaluate(mlp, LogNormalVariation(0.5), layers=middle)
        r_vec = vec.evaluate(mlp, LogNormalVariation(0.5), layers=middle)
        assert r_vec.accuracies == r_loop.accuracies
