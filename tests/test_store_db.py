"""ResultStore: schema lifecycle, dedup, leases, chunks, gc.

Wall-clock never enters these tests: the store's clock is injected, so
lease expiry is stepped deterministically with a fake.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.store import ResultStore, StaleLeaseError
from repro.store import schema as store_schema
from repro.store.schema import schema_version


class FakeClock:
    """Deterministic time source for lease tests."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path, clock):
    with ResultStore(str(tmp_path / "store.sqlite"), clock=clock) as s:
        yield s


FP_A = "a" * 64
FP_B = "b" * 64
REQUEST = {"model": "mlp", "n_samples": 4}


class TestSchema:
    def test_fresh_store_is_current_version_in_wal_mode(self, store):
        assert schema_version(store._conn) == store_schema.SCHEMA_VERSION
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_reopen_is_idempotent(self, tmp_path, clock):
        path = str(tmp_path / "s.sqlite")
        with ResultStore(path, clock=clock) as s:
            s.submit(FP_A, REQUEST)
        with ResultStore(path, clock=clock) as s:
            assert s.job(FP_A) is not None

    def test_newer_schema_than_code_is_refused(self, tmp_path, clock):
        path = str(tmp_path / "s.sqlite")
        with ResultStore(path, clock=clock):
            pass
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
                (str(store_schema.SCHEMA_VERSION + 1),),
            )
        conn.close()
        with pytest.raises(RuntimeError, match="newer than this code"):
            ResultStore(path, clock=clock)

    def test_migration_hook_walks_old_stores_forward(
        self, tmp_path, clock, monkeypatch
    ):
        path = str(tmp_path / "s.sqlite")
        with ResultStore(path, clock=clock) as s:
            s.submit(FP_A, REQUEST)

        def add_note_column(conn: sqlite3.Connection) -> None:
            conn.execute("ALTER TABLE jobs ADD COLUMN note TEXT")

        monkeypatch.setattr(
            store_schema, "SCHEMA_VERSION", store_schema.SCHEMA_VERSION + 1
        )
        monkeypatch.setitem(
            store_schema.MIGRATIONS,
            store_schema.SCHEMA_VERSION - 1,
            add_note_column,
        )
        with ResultStore(path, clock=clock) as s:
            assert schema_version(s._conn) == store_schema.SCHEMA_VERSION
            # Migrated store keeps its rows and gains the new column.
            assert s.job(FP_A) is not None
            s._conn.execute("SELECT note FROM jobs").fetchall()

    def test_missing_migration_step_fails_loudly(
        self, tmp_path, clock, monkeypatch
    ):
        path = str(tmp_path / "s.sqlite")
        with ResultStore(path, clock=clock):
            pass
        monkeypatch.setattr(
            store_schema, "SCHEMA_VERSION", store_schema.SCHEMA_VERSION + 1
        )
        with pytest.raises(RuntimeError, match="no migration registered"):
            ResultStore(path, clock=clock)


class TestSubmitDedup:
    def test_first_submit_creates_pending(self, store):
        outcome = store.submit(FP_A, REQUEST, sweep_key="k", sweep_param=0.5)
        assert outcome.created and outcome.state == "pending"
        assert not outcome.cache_hit
        row = store.job(FP_A)
        assert row.request == REQUEST
        assert (row.sweep_key, row.sweep_param) == ("k", 0.5)

    def test_duplicate_submit_only_bumps_counter(self, store):
        store.submit(FP_A, REQUEST)
        dup = store.submit(FP_A, {"model": "other"})
        assert not dup.created
        row = store.job(FP_A)
        assert row.submits == 2
        # First submission's request wins (its pinned execution knobs are
        # the schedule every runner must follow).
        assert row.request == REQUEST

    def test_cache_hit_requires_done(self, store, clock):
        store.submit(FP_A, REQUEST)
        assert not store.submit(FP_A, REQUEST).cache_hit
        row = store.claim("w", 10.0)
        store.finalize(row.fingerprint, "w", {"accuracies": [0.5]})
        assert store.submit(FP_A, REQUEST).cache_hit


class TestClaimAndLeases:
    def test_claims_oldest_first_and_exhausts(self, store, clock):
        store.submit(FP_B, REQUEST)
        clock.advance(1.0)
        store.submit(FP_A, REQUEST)
        first = store.claim("w1", 10.0)
        assert first.fingerprint == FP_B  # older submission wins
        assert first.state == "running" and first.owner == "w1"
        assert store.claim("w2", 10.0).fingerprint == FP_A
        assert store.claim("w3", 10.0) is None

    def test_running_job_with_live_lease_is_not_claimable(self, store, clock):
        store.submit(FP_A, REQUEST)
        store.claim("w1", lease_seconds=10.0)
        clock.advance(9.0)
        assert store.claim("w2", 10.0) is None

    def test_expired_lease_is_reclaimed(self, store, clock):
        store.submit(FP_A, REQUEST)
        store.claim("w1", lease_seconds=10.0)
        clock.advance(11.0)
        reclaimed = store.claim("w2", 10.0)
        assert reclaimed.fingerprint == FP_A
        assert reclaimed.owner == "w2"
        assert reclaimed.attempts == 2

    def test_zombie_owner_is_fenced_from_every_mutation(self, store, clock):
        store.submit(FP_A, REQUEST)
        store.claim("w1", lease_seconds=10.0)
        clock.advance(11.0)
        store.claim("w2", 10.0)
        with pytest.raises(StaleLeaseError):
            store.put_chunk(FP_A, "w1", 0, 0, 2, [0.5, 0.6])
        with pytest.raises(StaleLeaseError):
            store.renew(FP_A, "w1", 10.0)
        with pytest.raises(StaleLeaseError):
            store.finalize(FP_A, "w1", {"accuracies": []})
        with pytest.raises(StaleLeaseError):
            store.release(FP_A, "w1")
        with pytest.raises(StaleLeaseError):
            store.fail(FP_A, "w1", "boom")

    def test_renew_extends_the_lease(self, store, clock):
        store.submit(FP_A, REQUEST)
        store.claim("w1", lease_seconds=10.0)
        clock.advance(9.0)
        store.renew(FP_A, "w1", 10.0)
        clock.advance(9.0)  # 18s after claim, but renewed at 9s
        assert store.claim("w2", 10.0) is None

    def test_release_returns_to_pending_and_keeps_chunks(self, store):
        store.submit(FP_A, REQUEST)
        store.claim("w1", 10.0)
        store.put_chunk(FP_A, "w1", 0, 0, 2, [0.5, 0.6])
        store.release(FP_A, "w1")
        row = store.job(FP_A)
        assert row.state == "pending" and row.owner is None
        assert store.chunk_prefix(FP_A) == [0.5, 0.6]


class TestChunks:
    def test_prefix_concatenates_in_schedule_order(self, store):
        store.submit(FP_A, REQUEST)
        store.claim("w", 10.0)
        store.put_chunk(FP_A, "w", 0, 0, 2, [0.1, 0.2])
        store.put_chunk(FP_A, "w", 1, 2, 4, [0.3, 0.4])
        assert store.chunk_prefix(FP_A) == [0.1, 0.2, 0.3, 0.4]
        assert store.draws_stored(FP_A) == 4

    def test_double_landing_a_chunk_is_an_error(self, store):
        store.submit(FP_A, REQUEST)
        store.claim("w", 10.0)
        store.put_chunk(FP_A, "w", 0, 0, 2, [0.1, 0.2])
        with pytest.raises(StaleLeaseError, match="already"):
            store.put_chunk(FP_A, "w", 0, 0, 2, [0.1, 0.2])

    def test_non_contiguous_prefix_is_rejected(self, store):
        store.submit(FP_A, REQUEST)
        store.claim("w", 10.0)
        store.put_chunk(FP_A, "w", 0, 0, 2, [0.1, 0.2])
        store.put_chunk(FP_A, "w", 2, 4, 6, [0.5, 0.6])  # gap at chunk 1
        with pytest.raises(ValueError, match="non-contiguous"):
            store.chunk_prefix(FP_A)

    def test_misaligned_bounds_are_rejected(self, store):
        store.submit(FP_A, REQUEST)
        store.claim("w", 10.0)
        store.put_chunk(FP_A, "w", 0, 0, 3, [0.1, 0.2])  # stop-start != len
        with pytest.raises(ValueError, match="non-contiguous"):
            store.chunk_prefix(FP_A)


class TestCompletion:
    def test_finalize_records_result(self, store):
        store.submit(FP_A, REQUEST)
        store.claim("w", 10.0)
        payload = {"accuracies": [0.5, 0.7], "stopped_early": False}
        store.finalize(FP_A, "w", payload)
        row = store.job(FP_A)
        assert row.state == "done" and row.owner is None
        assert store.result(FP_A) == payload
        assert store.draws_stored(FP_A) == 2

    def test_fail_records_error(self, store):
        store.submit(FP_A, REQUEST)
        store.claim("w", 10.0)
        store.fail(FP_A, "w", "checkpoint changed")
        row = store.job(FP_A)
        assert row.state == "failed"
        assert "checkpoint changed" in row.error

    def test_put_result_requires_a_job_row(self, store):
        with pytest.raises(KeyError):
            store.put_result(FP_A, {"accuracies": []})

    def test_jobs_filters(self, store):
        store.submit(FP_A, REQUEST, sweep_key="k")
        store.submit(FP_B, REQUEST)
        store.claim("w", 10.0)
        assert {r.fingerprint for r in store.jobs(state="pending")} == {FP_B}
        assert {r.fingerprint for r in store.jobs(sweep_key="k")} == {FP_A}
        assert len(store.jobs()) == 2


class TestGc:
    def test_gc_folds_done_chunks_and_resets_dead_leases(self, store, clock):
        store.submit(FP_A, REQUEST)
        store.submit(FP_B, REQUEST)
        store.claim("w1", 10.0)  # FP_A (older? same clock -> fingerprint order)
        done_fp = store.jobs(state="running")[0].fingerprint
        store.put_chunk(done_fp, "w1", 0, 0, 2, [0.5, 0.6])
        store.finalize(done_fp, "w1", {"accuracies": [0.5, 0.6]})
        crashed = store.claim("w2", 10.0)
        clock.advance(11.0)
        counts = store.gc()
        assert counts == {
            "chunks_folded": 1, "leases_reset": 1, "failed_dropped": 0,
        }
        assert store.job(crashed.fingerprint).state == "pending"
        # Folded chunks are gone, but the finalized draws remain.
        assert store.chunk_prefix(done_fp) == []
        assert store.draws_stored(done_fp) == 2

    def test_gc_drop_failed_clears_for_resubmit(self, store):
        store.submit(FP_A, REQUEST)
        store.claim("w", 10.0)
        store.fail(FP_A, "w", "boom")
        counts = store.gc(drop_failed=True)
        assert counts["failed_dropped"] == 1
        assert store.job(FP_A) is None
        # Resubmission starts a fresh attempt.
        assert store.submit(FP_A, REQUEST).created
