"""Module system: registration, traversal, state dicts, freezing."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.module import Module, Parameter


class TestRegistration:
    def test_parameters_discovered(self, mlp):
        names = [n for n, _ in mlp.named_parameters()]
        assert "net.1.weight" in names  # net.0 is the Flatten
        assert "net.1.bias" in names

    def test_nested_module_traversal(self, lenet):
        module_names = [n for n, _ in lenet.named_modules()]
        assert "net" in module_names
        assert "net.0" in module_names

    def test_num_parameters_counts_scalars(self):
        layer = nn.Linear(3, 2, seed=0)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state
        assert "running_var" in state


class TestModes:
    def test_train_eval_propagates(self, lenet):
        lenet.eval()
        assert all(not m.training for m in lenet.modules())
        lenet.train()
        assert all(m.training for m in lenet.modules())


class TestFreezing:
    def test_freeze_drops_requires_grad(self):
        p = Parameter(np.ones(3))
        p.freeze()
        assert p.frozen and not p.requires_grad
        p.unfreeze()
        assert not p.frozen and p.requires_grad

    def test_module_freeze_recursive(self, mlp):
        mlp.freeze()
        assert all(p.frozen for p in mlp.parameters())
        mlp.unfreeze()
        assert all(not p.frozen for p in mlp.parameters())


class TestStateDict:
    def test_roundtrip_exact(self, mlp):
        state = mlp.state_dict()
        other = type(mlp)(4, [8], 3, flatten_input=True, seed=99)
        before = next(other.parameters()).data.copy()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(mlp.named_parameters(), other.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)
        assert not np.allclose(before, next(other.parameters()).data)

    def test_state_dict_is_copy(self, mlp):
        state = mlp.state_dict()
        state["net.1.weight"][:] = 999.0
        assert not np.allclose(
            dict(mlp.named_parameters())["net.1.weight"].data, 999.0
        )

    def test_shape_mismatch_raises(self, mlp):
        state = mlp.state_dict()
        state["net.1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_unknown_key_raises(self, mlp):
        with pytest.raises(KeyError):
            mlp.load_state_dict({"nonexistent": np.zeros(1)})

    def test_save_load_file(self, mlp, tmp_path):
        path = str(tmp_path / "model.npz")
        mlp.save(path)
        other = type(mlp)(4, [8], 3, flatten_input=True, seed=5)
        other.load(path)
        for (_, a), (_, b) in zip(mlp.named_parameters(), other.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_batchnorm_buffers_roundtrip(self):
        bn = nn.BatchNorm1d(3)
        bn.set_buffer("running_mean", np.array([1.0, 2.0, 3.0]))
        state = bn.state_dict()
        bn2 = nn.BatchNorm1d(3)
        bn2.load_state_dict(state)
        np.testing.assert_allclose(bn2.running_mean, [1.0, 2.0, 3.0])


class TestForwardProtocol:
    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_repr_contains_structure(self, lenet):
        text = repr(lenet)
        assert "Conv2d" in text and "Linear" in text
