"""Crossbar cost model: MAC counting, energy split, area accounting."""

import numpy as np
import pytest

import repro.nn as nn
from repro.compensation import CompensationPlan
from repro.hardware.cost import CostReport, CrossbarCostModel
from repro.models import LeNet5, VGG


class TestMACCounting:
    def test_linear_macs(self):
        model = nn.Sequential(nn.Linear(10, 4, seed=0))
        report = CrossbarCostModel().estimate(model)
        assert report.analog_macs == 40

    def test_conv_macs_scale_with_spatial(self):
        model = nn.Sequential(nn.Conv2d(3, 8, 3, seed=0))
        small = CrossbarCostModel().estimate(model, spatial_sites=4)
        large = CrossbarCostModel().estimate(model, spatial_sites=16)
        assert large.analog_macs == 4 * small.analog_macs

    def test_conv_mac_formula(self):
        model = nn.Sequential(nn.Conv2d(2, 4, 3, seed=0))
        report = CrossbarCostModel().estimate(model, spatial_sites=5)
        assert report.analog_macs == 4 * 2 * 9 * 5


class TestEnergyAndArea:
    def test_energy_positive_components(self):
        model = LeNet5(seed=0)
        report = CrossbarCostModel().estimate(model, spatial_sites=16)
        assert report.energy_pj > 0
        assert report.crossbar_reads > 0
        assert len(report.per_layer) == 5

    def test_area_proportional_to_cells(self):
        small = CrossbarCostModel().estimate(
            nn.Sequential(nn.Linear(10, 10, seed=0)))
        large = CrossbarCostModel().estimate(
            nn.Sequential(nn.Linear(20, 20, seed=0)))
        assert large.area_mm2 == pytest.approx(4 * small.area_mm2)

    def test_deeper_model_costs_more(self):
        lenet = CrossbarCostModel().estimate(LeNet5(seed=0), spatial_sites=16)
        vgg = CrossbarCostModel().estimate(
            VGG("vgg16", input_size=16, width=0.125, seed=0), spatial_sites=16
        )
        assert vgg.energy_pj > lenet.energy_pj


class TestDigitalSplit:
    def test_compensation_marginal_energy(self):
        """The paper's claim: compensation runs digitally at marginal cost
        relative to the analog MAC workload."""
        model = LeNet5(width_multiplier=2.0, seed=0)
        comp = CompensationPlan({0: 0.5}).apply(model, seed=0)
        report = CrossbarCostModel().estimate(comp, spatial_sites=144)
        assert 0 < report.digital_fraction < 0.10

    def test_report_defaults(self):
        report = CostReport()
        assert report.digital_fraction == 0.0
        assert report.energy_pj == 0.0
