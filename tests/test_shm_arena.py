"""ShmArena lifecycle + pool-transport leak guarantees.

The shm transport's contract (repro.evaluation.executor): the parent
creates exactly one segment per pool run and unlinks it in a ``finally``
— so no code path (clean exit, worker SIGKILL, adaptive early-stop
cancellation) may strand a segment in ``/dev/shm``. These tests scan the
actual tmpfs before and after each scenario.
"""

import os
import signal

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.evaluation import MonteCarloEvaluator, ShmArena, build_plan, execute
from repro.models import MLP
from repro.variation import LogNormalVariation


def _segments():
    """Names currently present in the POSIX shm tmpfs."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


class TestShmArenaUnit:
    def test_round_trip_and_alignment(self):
        specs = {
            "a": ("float64", (3, 5)),
            "b": ("int64", (7,)),
            "c": ("float32", (2, 2, 2)),
        }
        with ShmArena.create(specs) as arena:
            assert sorted(arena.keys()) == ["a", "b", "c"]
            for key, (dtype, shape) in specs.items():
                view = arena.array(key)
                assert view.dtype == np.dtype(dtype)
                assert view.shape == shape
                # Zero-initialized, cache-line aligned.
                assert not view.any()
                offset = arena.manifest["entries"][key][0]
                assert offset % ShmArena.ALIGN == 0
            arena.array("a")[...] = np.arange(15.0).reshape(3, 5)
            assert arena.array("a")[2, 4] == 14.0

    def test_attach_sees_creator_writes(self):
        with ShmArena.create({"x": ("float64", (4,))}) as arena:
            arena.array("x")[...] = [1.0, 2.0, 3.0, 4.0]
            attached = ShmArena.attach(arena.manifest)
            try:
                np.testing.assert_array_equal(
                    attached.array("x"), [1.0, 2.0, 3.0, 4.0]
                )
                # Shared pages, not a copy.
                attached.array("x")[0] = 9.0
                assert arena.array("x")[0] == 9.0
            finally:
                attached.close()

    def test_attacher_close_does_not_unlink(self):
        arena = ShmArena.create({"x": ("float64", (2,))})
        try:
            attached = ShmArena.attach(arena.manifest)
            attached.close()
            attached.unlink()  # non-owner: must be a no-op
            fresh = ShmArena.attach(arena.manifest)  # still mapped
            fresh.close()
        finally:
            arena.close()
            arena.unlink()

    def test_unlink_idempotent_and_removes_segment(self):
        arena = ShmArena.create({"x": ("float64", (2,))})
        name = arena.name.lstrip("/")
        assert name in _segments()
        arena.close()
        arena.unlink()
        arena.unlink()  # second unlink must not raise
        assert name not in _segments()

    def test_empty_specs(self):
        with ShmArena.create({}) as arena:
            assert arena.keys() == []

    def test_context_manager_cleans_up(self):
        with ShmArena.create({"x": ("float32", (8,))}) as arena:
            name = arena.name.lstrip("/")
            assert name in _segments()
        assert name not in _segments()


@pytest.fixture()
def pool_plan_inputs(blob_dataset):
    model = MLP(4, [8], 3, flatten_input=True, seed=0)
    return model, blob_dataset, LogNormalVariation(0.5)


class TestTransportLeaks:
    def test_clean_pool_run_leaves_no_segment(self, pool_plan_inputs):
        model, data, variation = pool_plan_inputs
        before = _segments()
        plan = build_plan(
            model, data, variation, n_samples=6, seed=3,
            n_workers=2, chunk_samples=3,
        )
        assert plan.backend == "pool" and plan.transport == "shm"
        execute(plan, model, data)
        assert _segments() == before

    def test_float32_pool_run_leaves_no_segment(self, pool_plan_inputs):
        model, data, variation = pool_plan_inputs
        before = _segments()
        plan = build_plan(
            model, data, variation, n_samples=6, seed=3,
            n_workers=2, chunk_samples=3, dtype="float32",
        )
        execute(plan, model, data)
        assert _segments() == before

    def test_worker_crash_unlinks_segment(self, blob_dataset):
        model = _CrashingMLP(4, [8], 3, flatten_input=True, seed=0)
        before = _segments()
        plan = build_plan(
            model, blob_dataset, LogNormalVariation(0.5),
            n_samples=6, seed=3, n_workers=2, chunk_samples=3,
        )
        assert plan.backend == "pool" and plan.transport == "shm"
        with pytest.raises(BrokenProcessPool):
            execute(plan, model, blob_dataset)
        assert _segments() == before

    def test_adaptive_early_stop_leaves_no_segment(self, pool_plan_inputs):
        model, data, variation = pool_plan_inputs
        before = _segments()
        # A huge tolerance stops after the minimum draws, cancelling the
        # still-queued chunks — the cancellation path must unlink too.
        ev = MonteCarloEvaluator(
            data, n_samples=64, seed=3, vectorized=False, n_workers=2,
            chunk_samples=2, tolerance=0.49, min_samples=2,
        )
        result = ev.evaluate(model, variation)
        assert result.n_samples_used < 64
        assert _segments() == before


class _CrashingMLP(MLP):
    """Dies with SIGKILL on first forward — only workers run forward in a
    pool evaluation, so this simulates a hard worker crash mid-task."""

    def forward(self, x):  # pragma: no cover - runs in the worker
        os.kill(os.getpid(), signal.SIGKILL)
