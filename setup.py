"""Packaging via legacy setup.py.

The offline environment ships setuptools but not ``wheel``, so PEP-517
builds (which need an editable wheel) fail; a plain ``setup.py`` keeps
``pip install -e .`` on the legacy ``setup.py develop`` path. All
metadata therefore lives here, with ``README.md`` as the long
description.
"""

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="correctnet-repro",
    version="1.0.0",
    description=(
        "Reproduction of CorrectNet (Eldebiky et al., DATE 2023): "
        "robustness enhancement of analog in-memory computing by error "
        "suppression and compensation, on a pure-numpy substrate"
    ),
    long_description=Path(__file__).with_name("README.md").read_text(
        encoding="utf-8"
    ),
    long_description_content_type="text/markdown",
    author="correctnet-repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the py.typed marker tells type checkers the inline
    # annotations are the package's public typing interface.
    package_data={"repro": ["py.typed"]},
    zip_safe=False,
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        # `pytest.ini` sets a per-test timeout that activates when
        # pytest-timeout is present; the plugin is optional so the bare
        # environment can still run the suite.
        "test": ["pytest", "pytest-timeout"],
        # The strict-typing gate (CI's lint job); not needed at runtime.
        "typecheck": ["mypy"],
    },
    entry_points={
        "console_scripts": [
            "correctnet=repro.cli:main",
            "correctnet-train=repro.cli:train_main",
            "correctnet-eval=repro.cli:eval_main",
            "correctnet-search=repro.cli:search_main",
            "correctnet-jobs=repro.store.cli:jobs_main",
            "correctnet-query=repro.store.cli:query_main",
            "correctnet-lint=repro.lint.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
        "Operating System :: OS Independent",
    ],
)
