"""Legacy setup shim.

The offline environment ships setuptools but not ``wheel``, so PEP-517
editable installs (which build an editable wheel) fail. Keeping a
``setup.py`` lets ``pip install -e .`` use the legacy ``setup.py develop``
path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
