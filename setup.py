"""Legacy setup shim.

The offline environment ships setuptools but not ``wheel``, so PEP-517
editable installs (which build an editable wheel) fail. Keeping a
``setup.py`` lets ``pip install -e .`` use the legacy ``setup.py develop``
path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup(
    extras_require={
        # `pytest.ini` sets a per-test timeout that activates when
        # pytest-timeout is present; the plugin is optional so the bare
        # environment can still run the suite.
        "test": ["pytest", "pytest-timeout"],
    },
)
